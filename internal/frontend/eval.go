package frontend

import "fmt"

// Compiled expressions and statements are closure trees over a frame —
// interpretation is per-iteration, which is ample for demonstrating the
// compilation pipeline (the middle-end and runtime are the reproduction's
// performance-bearing parts).

type intFn func(*frame) int64
type floatFn func(*frame) float64

// ctrl is statement-level control flow.
type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlBreak
)

type stmtFn func(*frame) ctrl

func runStmts(prog []stmtFn, fr *frame) ctrl {
	for _, s := range prog {
		if s(fr) == ctrlBreak {
			return ctrlBreak
		}
	}
	return ctrlNext
}

// --- expression compilation ---------------------------------------------------

// expr compiles an expression, reporting whether it is float-typed.
func (c *compiler) expr(e Expr) (intFn, floatFn, bool, error) {
	switch x := e.(type) {
	case *IntLit:
		v := x.Value
		return func(*frame) int64 { return v }, nil, false, nil
	case *FloatLit:
		v := x.Value
		return nil, func(*frame) float64 { return v }, true, nil
	case *Ident:
		s, ok := c.syms[x.Name]
		if !ok {
			return nil, nil, false, c.errf(x.Line, "undefined name %q", x.Name)
		}
		switch s.kind {
		case symScalar:
			v := s.val
			return func(*frame) int64 { return v }, nil, false, nil
		case symVar:
			slot := s.slot
			return func(fr *frame) int64 { return fr.vars[slot] }, nil, false, nil
		case symIntLocal:
			slot := s.slot
			return func(fr *frame) int64 { return fr.vars[slot] }, nil, false, nil
		case symFltLocal:
			slot := s.slot
			return nil, func(fr *frame) float64 { return fr.fvars[slot] }, true, nil
		case symAcc:
			return nil, func(fr *frame) float64 { return *fr.acc }, true, nil
		default:
			return nil, nil, false, c.errf(x.Line, "%q is an array; index it", x.Name)
		}
	case *IndexExpr:
		s, ok := c.syms[x.Array]
		if !ok {
			return nil, nil, false, c.errf(x.Line, "undefined array %q", x.Array)
		}
		idx, err := c.intExpr(x.Index)
		if err != nil {
			return nil, nil, false, err
		}
		name := x.Array
		switch s.kind {
		case symIntArr:
			idx = c.guardIdx(name, x.Line, false, idx)
			return func(fr *frame) int64 { return fr.env.intArr[name][idx(fr)] }, nil, false, nil
		case symFltArr:
			idx = c.guardIdx(name, x.Line, true, idx)
			return nil, func(fr *frame) float64 { return fr.env.fltArr[name][idx(fr)] }, true, nil
		default:
			return nil, nil, false, c.errf(x.Line, "%q is not an array", x.Array)
		}
	case *UnaryExpr:
		fi, ff, isF, err := c.expr(x.X)
		if err != nil {
			return nil, nil, false, err
		}
		switch x.Op {
		case "-":
			if isF {
				return nil, func(fr *frame) float64 { return -ff(fr) }, true, nil
			}
			return func(fr *frame) int64 { return -fi(fr) }, nil, false, nil
		case "!":
			if isF {
				return nil, nil, false, c.errf(x.Line, "! requires a boolean (integer) operand")
			}
			return func(fr *frame) int64 {
				if fi(fr) == 0 {
					return 1
				}
				return 0
			}, nil, false, nil
		}
		return nil, nil, false, c.errf(x.Line, "unknown unary %q", x.Op)
	case *BinExpr:
		return c.binExpr(x)
	}
	return nil, nil, false, fmt.Errorf("frontend: unknown expression")
}

func (c *compiler) binExpr(x *BinExpr) (intFn, floatFn, bool, error) {
	li, lf, lIsF, err := c.expr(x.L)
	if err != nil {
		return nil, nil, false, err
	}
	ri, rf, rIsF, err := c.expr(x.R)
	if err != nil {
		return nil, nil, false, err
	}
	anyF := lIsF || rIsF
	toF := func(fi intFn, ff floatFn) floatFn {
		if ff != nil {
			return ff
		}
		return func(fr *frame) float64 { return float64(fi(fr)) }
	}
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch x.Op {
	case "+", "-", "*", "/":
		if anyF {
			lv, rv := toF(li, lf), toF(ri, rf)
			switch x.Op {
			case "+":
				return nil, func(fr *frame) float64 { return lv(fr) + rv(fr) }, true, nil
			case "-":
				return nil, func(fr *frame) float64 { return lv(fr) - rv(fr) }, true, nil
			case "*":
				return nil, func(fr *frame) float64 { return lv(fr) * rv(fr) }, true, nil
			default:
				return nil, func(fr *frame) float64 { return lv(fr) / rv(fr) }, true, nil
			}
		}
		switch x.Op {
		case "+":
			return func(fr *frame) int64 { return li(fr) + ri(fr) }, nil, false, nil
		case "-":
			return func(fr *frame) int64 { return li(fr) - ri(fr) }, nil, false, nil
		case "*":
			return func(fr *frame) int64 { return li(fr) * ri(fr) }, nil, false, nil
		default:
			return func(fr *frame) int64 {
				r := ri(fr)
				if r == 0 {
					panic(fmt.Sprintf("frontend: line %d: division by zero", x.Line))
				}
				return li(fr) / r
			}, nil, false, nil
		}
	case "%":
		if anyF {
			return nil, nil, false, c.errf(x.Line, "%% requires integer operands")
		}
		return func(fr *frame) int64 {
			r := ri(fr)
			if r == 0 {
				panic(fmt.Sprintf("frontend: line %d: modulo by zero", x.Line))
			}
			return li(fr) % r
		}, nil, false, nil
	case "==", "!=", "<", "<=", ">", ">=":
		if anyF {
			lv, rv := toF(li, lf), toF(ri, rf)
			switch x.Op {
			case "==":
				return func(fr *frame) int64 { return b2i(lv(fr) == rv(fr)) }, nil, false, nil
			case "!=":
				return func(fr *frame) int64 { return b2i(lv(fr) != rv(fr)) }, nil, false, nil
			case "<":
				return func(fr *frame) int64 { return b2i(lv(fr) < rv(fr)) }, nil, false, nil
			case "<=":
				return func(fr *frame) int64 { return b2i(lv(fr) <= rv(fr)) }, nil, false, nil
			case ">":
				return func(fr *frame) int64 { return b2i(lv(fr) > rv(fr)) }, nil, false, nil
			default:
				return func(fr *frame) int64 { return b2i(lv(fr) >= rv(fr)) }, nil, false, nil
			}
		}
		switch x.Op {
		case "==":
			return func(fr *frame) int64 { return b2i(li(fr) == ri(fr)) }, nil, false, nil
		case "!=":
			return func(fr *frame) int64 { return b2i(li(fr) != ri(fr)) }, nil, false, nil
		case "<":
			return func(fr *frame) int64 { return b2i(li(fr) < ri(fr)) }, nil, false, nil
		case "<=":
			return func(fr *frame) int64 { return b2i(li(fr) <= ri(fr)) }, nil, false, nil
		case ">":
			return func(fr *frame) int64 { return b2i(li(fr) > ri(fr)) }, nil, false, nil
		default:
			return func(fr *frame) int64 { return b2i(li(fr) >= ri(fr)) }, nil, false, nil
		}
	case "&&", "||":
		if anyF {
			return nil, nil, false, c.errf(x.Line, "%s requires boolean (integer) operands", x.Op)
		}
		if x.Op == "&&" {
			return func(fr *frame) int64 { return b2i(li(fr) != 0 && ri(fr) != 0) }, nil, false, nil
		}
		return func(fr *frame) int64 { return b2i(li(fr) != 0 || ri(fr) != 0) }, nil, false, nil
	}
	return nil, nil, false, c.errf(x.Line, "unknown operator %q", x.Op)
}

// guardIdx wraps a subscript closure with a range guard in checked mode.
// An access the oracle proves in bounds keeps the raw closure — the proofs'
// whole point — and the default (unchecked) build is untouched.
func (c *compiler) guardIdx(name string, line int, float bool, idx intFn) intFn {
	if !c.opts.CheckBounds {
		return idx
	}
	if c.opts.Oracle != nil && c.opts.Oracle.ProvenInBounds(line, name) {
		c.nProven++
		return idx
	}
	c.nChecked++
	file := c.file
	return func(fr *frame) int64 {
		i := idx(fr)
		var n int
		if float {
			n = len(fr.env.fltArr[name])
		} else {
			n = len(fr.env.intArr[name])
		}
		if i < 0 || i >= int64(n) {
			panic(fmt.Sprintf("%s: %s[%d] out of range [0, %d)", srcPos(file, line), name, i, n))
		}
		return i
	}
}

// intExpr compiles an expression that must be integer-typed.
func (c *compiler) intExpr(e Expr) (intFn, error) {
	fi, _, isF, err := c.expr(e)
	if err != nil {
		return nil, err
	}
	if isF {
		return nil, fmt.Errorf("frontend: expected an integer expression")
	}
	return fi, nil
}

// numExpr compiles an expression coerced to float.
func (c *compiler) numExpr(e Expr) (floatFn, error) {
	fi, ff, isF, err := c.expr(e)
	if err != nil {
		return nil, err
	}
	if isF {
		return ff, nil
	}
	return func(fr *frame) float64 { return float64(fi(fr)) }, nil
}

// --- statement compilation ------------------------------------------------------

// stmts compiles a statement list in a fresh lexical scope.
func (c *compiler) stmts(list []Stmt) ([]stmtFn, error) {
	var declared []string
	defer func() {
		for _, n := range declared {
			delete(c.syms, n)
		}
	}()
	var prog []stmtFn
	for _, s := range list {
		fn, names, err := c.stmt(s)
		if err != nil {
			return nil, err
		}
		declared = append(declared, names...)
		prog = append(prog, fn)
	}
	return prog, nil
}

func (c *compiler) stmt(s Stmt) (stmtFn, []string, error) {
	switch x := s.(type) {
	case *LetStmt:
		return c.letStmt(x)
	case *AssignStmt:
		fn, err := c.assign(x)
		return fn, nil, err
	case *IfStmt:
		cond, err := c.intExpr(x.Cond)
		if err != nil {
			return nil, nil, err
		}
		then, err := c.stmts(x.Then)
		if err != nil {
			return nil, nil, err
		}
		els, err := c.stmts(x.Else)
		if err != nil {
			return nil, nil, err
		}
		return func(fr *frame) ctrl {
			if cond(fr) != 0 {
				return runStmts(then, fr)
			}
			return runStmts(els, fr)
		}, nil, nil
	case *BreakStmt:
		return func(*frame) ctrl { return ctrlBreak }, nil, nil
	case *LoopStmt:
		if x.Parallel {
			return nil, nil, c.errf(x.Line, "parallel loops may not appear inside serial statements")
		}
		return c.serialFor(x)
	case *SumDecl:
		return nil, nil, c.errf(x.Line, "sum is only valid directly before a nested parallel loop")
	}
	return nil, nil, fmt.Errorf("frontend: unknown statement")
}

func (c *compiler) letStmt(x *LetStmt) (stmtFn, []string, error) {
	if _, dup := c.syms[x.Name]; dup {
		return nil, nil, c.errf(x.Line, "%q shadows an existing name", x.Name)
	}
	fi, ff, isF, err := c.expr(x.Init)
	if err != nil {
		return nil, nil, err
	}
	if isF {
		slot := c.nFVars
		c.nFVars++
		c.syms[x.Name] = sym{kind: symFltLocal, slot: slot}
		return func(fr *frame) ctrl {
			fr.fvars[slot] = ff(fr)
			return ctrlNext
		}, []string{x.Name}, nil
	}
	slot := c.nVars
	c.nVars++
	c.syms[x.Name] = sym{kind: symIntLocal, slot: slot}
	return func(fr *frame) ctrl {
		fr.vars[slot] = fi(fr)
		return ctrlNext
	}, []string{x.Name}, nil
}

func (c *compiler) assign(x *AssignStmt) (stmtFn, error) {
	s, ok := c.syms[x.Target]
	if !ok {
		return nil, c.errf(x.Line, "undefined name %q", x.Target)
	}
	if x.Index != nil {
		idx, err := c.intExpr(x.Index)
		if err != nil {
			return nil, err
		}
		name := x.Target
		idx = c.guardIdx(name, x.Line, s.kind == symFltArr, idx)
		switch s.kind {
		case symFltArr:
			val, err := c.numExpr(x.Value)
			if err != nil {
				return nil, err
			}
			if x.Add {
				return func(fr *frame) ctrl {
					fr.env.fltArr[name][idx(fr)] += val(fr)
					return ctrlNext
				}, nil
			}
			return func(fr *frame) ctrl {
				fr.env.fltArr[name][idx(fr)] = val(fr)
				return ctrlNext
			}, nil
		case symIntArr:
			val, err := c.intExpr(x.Value)
			if err != nil {
				return nil, err
			}
			if x.Add {
				return func(fr *frame) ctrl {
					fr.env.intArr[name][idx(fr)] += val(fr)
					return ctrlNext
				}, nil
			}
			return func(fr *frame) ctrl {
				fr.env.intArr[name][idx(fr)] = val(fr)
				return ctrlNext
			}, nil
		default:
			return nil, c.errf(x.Line, "%q is not an array", x.Target)
		}
	}
	switch s.kind {
	case symAcc:
		if !x.Add {
			return nil, c.errf(x.Line, "accumulators only support += (reduction identity)")
		}
		val, err := c.numExpr(x.Value)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) ctrl {
			*fr.acc += val(fr)
			return ctrlNext
		}, nil
	case symFltLocal:
		val, err := c.numExpr(x.Value)
		if err != nil {
			return nil, err
		}
		slot := s.slot
		if x.Add {
			return func(fr *frame) ctrl {
				fr.fvars[slot] += val(fr)
				return ctrlNext
			}, nil
		}
		return func(fr *frame) ctrl {
			fr.fvars[slot] = val(fr)
			return ctrlNext
		}, nil
	case symIntLocal:
		val, err := c.intExpr(x.Value)
		if err != nil {
			return nil, err
		}
		slot := s.slot
		if x.Add {
			return func(fr *frame) ctrl {
				fr.vars[slot] += val(fr)
				return ctrlNext
			}, nil
		}
		return func(fr *frame) ctrl {
			fr.vars[slot] = val(fr)
			return ctrlNext
		}, nil
	case symVar:
		return nil, c.errf(x.Line, "loop variable %q is read-only", x.Target)
	case symScalar:
		return nil, c.errf(x.Line, "scalar %q is immutable; use a local (let)", x.Target)
	default:
		return nil, c.errf(x.Line, "cannot assign to %q", x.Target)
	}
}

// serialFor compiles a plain (non-parallel) loop statement.
func (c *compiler) serialFor(x *LoopStmt) (stmtFn, []string, error) {
	if x.Reduce != "" {
		return nil, nil, c.errf(x.Line, "reduce is only valid on parallel loops")
	}
	lo, err := c.intExpr(x.Lo)
	if err != nil {
		return nil, nil, err
	}
	hi, err := c.intExpr(x.Hi)
	if err != nil {
		return nil, nil, err
	}
	if _, dup := c.syms[x.Var]; dup {
		return nil, nil, c.errf(x.Line, "%q shadows an existing name", x.Var)
	}
	slot := c.nVars
	c.nVars++
	c.syms[x.Var] = sym{kind: symVar, slot: slot}
	body, err := c.stmts(x.Body)
	delete(c.syms, x.Var)
	if err != nil {
		return nil, nil, err
	}
	return func(fr *frame) ctrl {
		for v, end := lo(fr), hi(fr); v < end; v++ {
			fr.vars[slot] = v
			if runStmts(body, fr) == ctrlBreak {
				break
			}
		}
		return ctrlNext
	}, nil, nil
}
