// Package frontend is the textual front-end of the reproduction: it parses
// a small kernel language — ordinary nested loops where parallelism is
// declared with a `parallel` keyword, the analog of the paper's
// OpenMP-pragma front-end — and compiles it into the loopnest IR consumed
// by the heartbeat middle-end (internal/core).
//
// The language is deliberately small but real: typed scalars and arrays,
// dataset bindings for the synthetic generators, arithmetic and comparison
// expressions, serial for/if statements, and nested `parallel for` loops
// with scalar sum reductions. A kernel like the paper's running example
// reads:
//
//	kernel spmv
//	let n = 1000
//	matrix A = arrowhead(n)
//	array x float[n] = 1.0
//	array out float[n]
//
//	parallel for i = 0 .. A.rows {
//	    sum s = 0.0
//	    parallel for j = A.rowPtr[i] .. A.rowPtr[i+1] reduce(s) {
//	        s += A.val[j] * x[A.colInd[j]]
//	    }
//	    out[i] = s
//	}
//
// Compiled kernels execute through the same Program/Exec machinery as
// handwritten nests (interpreted bodies: the front-end demonstrates the
// pipeline, not peak throughput).
package frontend

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokSymbol // one of ( ) { } [ ] = + - * / % , . ! < > and multi-char ops
	tokNewline
)

// token is one lexeme with its position.
type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokNewline:
		return "end of line"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// srcPos renders a diagnostic position: "file:line" (clickable in editors
// and CI logs) when the source file is known, the package-prefixed
// "frontend: line N" for unnamed sources.
func srcPos(file string, line int) string {
	if file == "" {
		return fmt.Sprintf("frontend: line %d", line)
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// lexer splits kernel source into tokens. Comments run from '#' to end of
// line. Newlines are significant (they terminate statements) and are
// emitted as tokens, collapsed across blank lines.
type lexer struct {
	file string
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes src.
func lex(src string) ([]token, error) { return lexFile("", src) }

// lexFile tokenizes src read from the named file.
func lexFile(file, src string) ([]token, error) {
	l := &lexer{file: file, src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\n':
			l.emitNewline()
			l.pos++
			l.line++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case isIdentStart(rune(c)):
			l.lexIdent()
		case unicode.IsDigit(rune(c)):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.emitNewline()
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
	return l.toks, nil
}

func (l *lexer) emitNewline() {
	if n := len(l.toks); n > 0 && l.toks[n-1].kind != tokNewline {
		l.toks = append(l.toks, token{kind: tokNewline, line: l.line})
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// lexIdent consumes an identifier, including dotted field access
// (e.g. A.rowPtr) as a single token.
func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	// Dotted field: ident '.' ident, used by dataset bindings.
	for l.pos+1 < len(l.src) && l.src[l.pos] == '.' && isIdentStart(rune(l.src[l.pos+1])) {
		l.pos++
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], line: l.line})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	kind := tokInt
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' &&
		l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
		kind = tokFloat
		l.pos++
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
		}
	}
	l.toks = append(l.toks, token{kind: kind, text: l.src[start:l.pos], line: l.line})
	return nil
}

// symbols longest-first so multi-character operators win.
var symbols = []string{
	"..", "+=", "==", "!=", "<=", ">=", "&&", "||",
	"(", ")", "{", "}", "[", "]", "=", "+", "-", "*", "/", "%", ",", "<", ">", "!",
}

func (l *lexer) lexSymbol() error {
	rest := l.src[l.pos:]
	for _, s := range symbols {
		if strings.HasPrefix(rest, s) {
			l.toks = append(l.toks, token{kind: tokSymbol, text: s, line: l.line})
			l.pos += len(s)
			return nil
		}
	}
	return fmt.Errorf("%s: unexpected character %q", srcPos(l.file, l.line), rest[0])
}
