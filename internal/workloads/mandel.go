package workloads

import (
	"math"

	"hbc/internal/loopnest"
	"hbc/internal/omp"
)

// mandelWork is the TPAL mandelbrot benchmark: per-pixel escape-time
// iteration over a region of the complex plane. Its irregularity is the
// fractal itself — neighboring pixels can differ by orders of magnitude in
// iteration count — and the paper uses it to demonstrate that the optimal
// chunk size is input-dependent (Figs. 10 and 11): a view inside the set
// (high per-pixel latency) wants chunk 1, a zoomed-out view (low latency)
// wants large chunks.
type mandelWork struct {
	rows, cols int64
	maxIter    int64
	x0, y0     float64 // top-left of the view
	dx, dy     float64 // per-pixel step

	out    []int32
	oracle []int32
}

func init() {
	register("mandelbrot", func() Workload {
		return &mandelWork{}
	})
}

func (w *mandelWork) Info() Info {
	return Info{Name: "mandelbrot", TPALSet: true, ManualSet: true, Levels: 2}
}

func (w *mandelWork) Prepare(scale float64) {
	w.rows = scaled(400, math.Sqrt(scale))
	w.cols = scaled(400, math.Sqrt(scale))
	w.maxIter = 600
	w.SetView(-2.0, -1.25, 2.5, 2.5) // the standard full view: mixed latency
	w.out = make([]int32, w.rows*w.cols)
	w.oracle = nil
}

// SetView points the workload at the rectangle (x0, y0)–(x0+w, y0+h).
func (w *mandelWork) SetView(x0, y0, width, height float64) {
	w.x0, w.y0 = x0, y0
	w.dx = width / float64(w.cols)
	w.dy = height / float64(w.rows)
	w.oracle = nil
}

// UseHighLatencyInput selects a view inside the set — every pixel runs the
// full maxIter iterations (the paper's "input 1").
func (w *mandelWork) UseHighLatencyInput() { w.SetView(-0.2, -0.2, 0.4, 0.4) }

// UseLowLatencyInput selects a far-zoomed-out view — almost every pixel
// escapes within a few iterations (the paper's "input 2").
func (w *mandelWork) UseLowLatencyInput() { w.SetView(-20, -20, 40, 40) }

// pixel computes the escape count for pixel (i, j).
func (w *mandelWork) pixel(i, j int64) int32 {
	cr := w.x0 + float64(j)*w.dx
	ci := w.y0 + float64(i)*w.dy
	var zr, zi float64
	var it int64
	for ; it < w.maxIter; it++ {
		zr2, zi2 := zr*zr, zi*zi
		if zr2+zi2 > 4 {
			break
		}
		zr, zi = zr2-zi2+cr, 2*zr*zi+ci
	}
	return int32(it)
}

func (w *mandelWork) rowRange(i, jlo, jhi int64) {
	base := i * w.cols
	for j := jlo; j < jhi; j++ {
		w.out[base+j] = w.pixel(i, j)
	}
}

func (w *mandelWork) Serial() {
	for i := int64(0); i < w.rows; i++ {
		w.rowRange(i, 0, w.cols)
	}
}

func (w *mandelWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	if !cfg.Nested {
		pool.For(cfg.Sched, 0, w.rows, cfg.Chunk, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				w.rowRange(i, 0, w.cols)
			}
		})
		return
	}
	n := pool.Size()
	pool.For(cfg.Sched, 0, w.rows, cfg.Chunk, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			i := i
			omp.NestedFor(n, cfg.Sched, 0, w.cols, cfg.Chunk, func(jlo, jhi int64) {
				w.rowRange(i, jlo, jhi)
			})
		}
	})
}

func (w *mandelWork) nest() *loopnest.Nest {
	colLoop := &loopnest.Loop{
		Name: "col",
		Bounds: func(env any, _ []int64) (int64, int64) {
			return 0, env.(*mandelWork).cols
		},
		Body: func(env any, idx []int64, lo, hi int64, _ any) {
			env.(*mandelWork).rowRange(idx[0], lo, hi)
		},
	}
	rowLoop := &loopnest.Loop{
		Name: "row",
		Bounds: func(env any, _ []int64) (int64, int64) {
			return 0, env.(*mandelWork).rows
		},
		Children: []*loopnest.Loop{colLoop},
	}
	return &loopnest.Nest{Name: "mandelbrot", Root: rowLoop}
}

func (w *mandelWork) BindHBC(d *Driver) error { return d.Load("mandelbrot", w.nest(), w) }

func (w *mandelWork) RunHBC(d *Driver) { d.Run("mandelbrot") }

func (w *mandelWork) Verify() error {
	if w.oracle == nil {
		w.oracle = make([]int32, len(w.out))
		save := w.out
		w.out = w.oracle
		w.Serial()
		w.out = save
	}
	return int32sEqual(w.out, w.oracle, "mandelbrot")
}

// mandelbulbWork extends mandelbrot to three dimensions: per-voxel escape
// iteration of the power-8 triplex map — the paper's second manual
// benchmark with a three-deep DOALL nest.
type mandelbulbWork struct {
	nz, ny, nx int64
	maxIter    int64
	out        []int32
	oracle     []int32
}

func init() {
	register("mandelbulb", func() Workload { return &mandelbulbWork{} })
}

func (w *mandelbulbWork) Info() Info {
	return Info{Name: "mandelbulb", TPALSet: false, ManualSet: true, Levels: 3}
}

func (w *mandelbulbWork) Prepare(scale float64) {
	side := scaled(40, math.Cbrt(scale))
	w.nz, w.ny, w.nx = side, side, side
	w.maxIter = 40
	w.out = make([]int32, w.nz*w.ny*w.nx)
	w.oracle = nil
}

// voxel iterates v ← v^8 + c in triplex coordinates (White-Nylander
// power-8 mandelbulb) for the grid cell (iz, iy, ix) of [-1.2,1.2]³.
func (w *mandelbulbWork) voxel(iz, iy, ix int64) int32 {
	step := func(i, n int64) float64 { return -1.2 + 2.4*float64(i)/float64(n-1) }
	cx, cy, cz := step(ix, w.nx), step(iy, w.ny), step(iz, w.nz)
	var x, y, z float64
	const power = 8
	var it int64
	for ; it < w.maxIter; it++ {
		r := math.Sqrt(x*x + y*y + z*z)
		if r > 2 {
			break
		}
		theta := math.Atan2(math.Sqrt(x*x+y*y), z)
		phi := math.Atan2(y, x)
		rp := math.Pow(r, power)
		st, ct := math.Sincos(power * theta)
		sp, cp := math.Sincos(power * phi)
		x = rp*st*cp + cx
		y = rp*st*sp + cy
		z = rp*ct + cz
	}
	return int32(it)
}

func (w *mandelbulbWork) xRange(iz, iy, xlo, xhi int64) {
	base := (iz*w.ny + iy) * w.nx
	for ix := xlo; ix < xhi; ix++ {
		w.out[base+ix] = w.voxel(iz, iy, ix)
	}
}

func (w *mandelbulbWork) Serial() {
	for iz := int64(0); iz < w.nz; iz++ {
		for iy := int64(0); iy < w.ny; iy++ {
			w.xRange(iz, iy, 0, w.nx)
		}
	}
}

func (w *mandelbulbWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	if !cfg.Nested {
		pool.For(cfg.Sched, 0, w.nz, cfg.Chunk, func(lo, hi int64) {
			for iz := lo; iz < hi; iz++ {
				for iy := int64(0); iy < w.ny; iy++ {
					w.xRange(iz, iy, 0, w.nx)
				}
			}
		})
		return
	}
	n := pool.Size()
	pool.For(cfg.Sched, 0, w.nz, cfg.Chunk, func(lo, hi int64) {
		for iz := lo; iz < hi; iz++ {
			iz := iz
			omp.NestedFor(n, cfg.Sched, 0, w.ny, cfg.Chunk, func(ylo, yhi int64) {
				for iy := ylo; iy < yhi; iy++ {
					iy := iy
					omp.NestedFor(n, cfg.Sched, 0, w.nx, cfg.Chunk, func(xlo, xhi int64) {
						w.xRange(iz, iy, xlo, xhi)
					})
				}
			})
		}
	})
}

func (w *mandelbulbWork) nest() *loopnest.Nest {
	xLoop := &loopnest.Loop{
		Name:   "x",
		Bounds: func(env any, _ []int64) (int64, int64) { return 0, env.(*mandelbulbWork).nx },
		Body: func(env any, idx []int64, lo, hi int64, _ any) {
			env.(*mandelbulbWork).xRange(idx[0], idx[1], lo, hi)
		},
	}
	yLoop := &loopnest.Loop{
		Name:     "y",
		Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*mandelbulbWork).ny },
		Children: []*loopnest.Loop{xLoop},
	}
	zLoop := &loopnest.Loop{
		Name:     "z",
		Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*mandelbulbWork).nz },
		Children: []*loopnest.Loop{yLoop},
	}
	return &loopnest.Nest{Name: "mandelbulb", Root: zLoop}
}

func (w *mandelbulbWork) BindHBC(d *Driver) error { return d.Load("mandelbulb", w.nest(), w) }

func (w *mandelbulbWork) RunHBC(d *Driver) { d.Run("mandelbulb") }

func (w *mandelbulbWork) Verify() error {
	if w.oracle == nil {
		w.oracle = make([]int32, len(w.out))
		save := w.out
		w.out = w.oracle
		w.Serial()
		w.out = save
	}
	return int32sEqual(w.out, w.oracle, "mandelbulb")
}
