package workloads

import (
	"hbc/internal/loopnest"
	"hbc/internal/omp"
	"hbc/internal/tensor"
)

// ttmR is the column count of the ttm dense factor matrix.
const ttmR = 8

// tensorWork implements the TACO-derived ttv and ttm kernels over a
// power-law CSF tensor (the NELL-2 stand-in). The DOALL nest is three deep:
// the dense slice loop, the sparse fiber loop, and the entry loop — all
// parallel, which is exactly the nesting TACO emits but only annotates at
// the outermost level (§6.1).
type tensorWork struct {
	info Info
	ttm  bool

	t      *tensor.CSF3
	vec    []float64 // ttv input vector
	mat    []float64 // ttm input matrix K×ttmR
	out    []float64
	oracle []float64
}

func init() {
	register("ttv", func() Workload {
		return &tensorWork{info: Info{Name: "ttv", Levels: 3}}
	})
	register("ttm", func() Workload {
		return &tensorWork{info: Info{Name: "ttm", Levels: 3}, ttm: true}
	})
}

func (w *tensorWork) Info() Info { return w.info }

func (w *tensorWork) Prepare(scale float64) {
	i := scaled(6000, scale)
	w.t = tensor.PowerLawTensor(i, 800, 600, 300, 60, 0.9, 23)
	w.vec = make([]float64, w.t.K)
	for k := range w.vec {
		w.vec[k] = 1 + float64(k%9)/9
	}
	w.mat = make([]float64, w.t.K*ttmR)
	for k := range w.mat {
		w.mat[k] = 1 + float64(k%7)/7
	}
	if w.ttm {
		w.out = make([]float64, w.t.I*w.t.J*ttmR)
	} else {
		w.out = make([]float64, w.t.I*w.t.J)
	}
	w.oracle = nil
}

func (w *tensorWork) clearOut() {
	for i := range w.out {
		w.out[i] = 0
	}
}

// sliceRange runs slices [lo, hi) serially (the per-thread body of the
// outer-only parallelization).
func (w *tensorWork) sliceRange(lo, hi int64) {
	t := w.t
	for i := lo; i < hi; i++ {
		for f := t.JPtr[i]; f < t.JPtr[i+1]; f++ {
			if w.ttm {
				w.fiberTTM(i, f)
			} else {
				w.out[i*t.J+int64(t.JInd[f])] = w.fiberTTV(f)
			}
		}
	}
}

func (w *tensorWork) fiberTTV(f int64) float64 {
	t := w.t
	var s float64
	for p := t.KPtr[f]; p < t.KPtr[f+1]; p++ {
		s += t.Val[p] * w.vec[t.KInd[p]]
	}
	return s
}

func (w *tensorWork) fiberTTM(i, f int64) {
	t := w.t
	row := (i*t.J + int64(t.JInd[f])) * ttmR
	for p := t.KPtr[f]; p < t.KPtr[f+1]; p++ {
		v := t.Val[p]
		mrow := int64(t.KInd[p]) * ttmR
		for c := int64(0); c < ttmR; c++ {
			w.out[row+c] += v * w.mat[mrow+c]
		}
	}
}

func (w *tensorWork) Serial() {
	w.clearOut()
	w.sliceRange(0, w.t.I)
}

func (w *tensorWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	w.clearOut()
	if !cfg.Nested {
		// TACO's emitted code: only the outermost loop carries a pragma.
		pool.For(cfg.Sched, 0, w.t.I, cfg.Chunk, func(lo, hi int64) {
			w.sliceRange(lo, hi)
		})
		return
	}
	t := w.t
	nth := pool.Size()
	pool.For(cfg.Sched, 0, t.I, cfg.Chunk, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			i := i
			omp.NestedFor(nth, cfg.Sched, t.JPtr[i], t.JPtr[i+1], cfg.Chunk, func(flo, fhi int64) {
				for f := flo; f < fhi; f++ {
					if w.ttm {
						w.fiberTTM(i, f)
					} else {
						w.out[i*t.J+int64(t.JInd[f])] = w.fiberTTV(f)
					}
				}
			})
		}
	})
}

func (w *tensorWork) BindHBC(d *Driver) error {
	// Leaf: the k-entry loop with a reduction (scalar for ttv, ttmR-vector
	// for ttm); fiber Post writes the output cell(s).
	var kLoop *loopnest.Loop
	if w.ttm {
		kLoop = &loopnest.Loop{
			Name: "k",
			Bounds: func(env any, idx []int64) (int64, int64) {
				t := env.(*tensorWork).t
				return t.KPtr[idx[1]], t.KPtr[idx[1]+1]
			},
			Reduce: loopnest.VecSumFloat64(ttmR),
			Body: func(env any, _ []int64, lo, hi int64, acc any) {
				tw := env.(*tensorWork)
				t := tw.t
				row := acc.([]float64)
				for p := lo; p < hi; p++ {
					v := t.Val[p]
					mrow := int64(t.KInd[p]) * ttmR
					for c := int64(0); c < ttmR; c++ {
						row[c] += v * tw.mat[mrow+c]
					}
				}
			},
		}
	} else {
		kLoop = &loopnest.Loop{
			Name: "k",
			Bounds: func(env any, idx []int64) (int64, int64) {
				t := env.(*tensorWork).t
				return t.KPtr[idx[1]], t.KPtr[idx[1]+1]
			},
			Reduce: loopnest.SumFloat64(),
			Body: func(env any, _ []int64, lo, hi int64, acc any) {
				tw := env.(*tensorWork)
				t := tw.t
				s := acc.(*float64)
				for p := lo; p < hi; p++ {
					*s += t.Val[p] * tw.vec[t.KInd[p]]
				}
			},
		}
	}
	fiberLoop := &loopnest.Loop{
		Name: "fiber",
		Bounds: func(env any, idx []int64) (int64, int64) {
			t := env.(*tensorWork).t
			return t.JPtr[idx[0]], t.JPtr[idx[0]+1]
		},
		Children: []*loopnest.Loop{kLoop},
		Post: func(env any, idx []int64, _ any, children []any) {
			tw := env.(*tensorWork)
			t := tw.t
			i, f := idx[0], idx[1]
			if tw.ttm {
				row := (i*t.J + int64(t.JInd[f])) * ttmR
				acc := children[0].([]float64)
				copy(tw.out[row:row+ttmR], acc)
			} else {
				tw.out[i*t.J+int64(t.JInd[f])] = *children[0].(*float64)
			}
		},
	}
	sliceLoop := &loopnest.Loop{
		Name:     "slice",
		Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*tensorWork).t.I },
		Children: []*loopnest.Loop{fiberLoop},
	}
	return d.Load("tensor", &loopnest.Nest{Name: w.info.Name, Root: sliceLoop}, w)
}

func (w *tensorWork) RunHBC(d *Driver) {
	w.clearOut()
	d.Run("tensor")
}

func (w *tensorWork) Verify() error {
	if w.oracle == nil {
		w.oracle = make([]float64, len(w.out))
		if w.ttm {
			w.t.TTM(w.mat, ttmR, w.oracle)
		} else {
			w.t.TTV(w.vec, w.oracle)
		}
	}
	return floatsClose(w.out, w.oracle, 1e-9, w.info.Name)
}
