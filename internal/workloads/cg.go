package workloads

import (
	"hbc/internal/loopnest"
	"hbc/internal/matrix"
	"hbc/internal/omp"
)

const cgIters = 15

// cgWork is the NAS conjugate-gradient benchmark: repeated spmv plus dot
// products and vector updates on a symmetric positive-definite matrix. The
// paper runs it on cage15 (the only NAS input that yields an irregular
// workload); we use the CageLike generator — see internal/matrix. The spmv
// inside cg dominates and carries the irregular two-level nest.
type cgWork struct {
	m *matrix.CSR
	b []float64

	x, r, p, q []float64
	oracle     []float64

	// rho is the running r·r for the HBC variant's scalar plumbing.
	alpha, beta float64
}

func init() { register("cg", func() Workload { return &cgWork{} }) }

func (w *cgWork) Info() Info {
	return Info{Name: "cg", ManualSet: true, Levels: 2}
}

func (w *cgWork) Prepare(scale float64) {
	n := scaled(30_000, scale)
	w.m = matrix.CageLike(n, 3, 8, 15)
	w.b = make([]float64, n)
	for i := range w.b {
		w.b[i] = 1 + float64(i%5)/5
	}
	w.x = make([]float64, n)
	w.r = make([]float64, n)
	w.p = make([]float64, n)
	w.q = make([]float64, n)
	w.oracle = nil
}

// reset prepares x=0, r=p=b.
func (w *cgWork) reset() {
	for i := range w.x {
		w.x[i] = 0
		w.r[i] = w.b[i]
		w.p[i] = w.b[i]
	}
}

func dotRange(a, b []float64, lo, hi int64) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += a[i] * b[i]
	}
	return s
}

func (w *cgWork) Serial() {
	w.reset()
	n := int64(len(w.x))
	rho := dotRange(w.r, w.r, 0, n)
	for it := 0; it < cgIters; it++ {
		w.m.SpMV(w.p, w.q)
		alpha := rho / dotRange(w.p, w.q, 0, n)
		for i := range w.x {
			w.x[i] += alpha * w.p[i]
			w.r[i] -= alpha * w.q[i]
		}
		rhoNew := dotRange(w.r, w.r, 0, n)
		beta := rhoNew / rho
		rho = rhoNew
		for i := range w.p {
			w.p[i] = w.r[i] + beta*w.p[i]
		}
	}
}

func (w *cgWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	w.reset()
	n := int64(len(w.x))
	m := w.m
	spmv := func() {
		if !cfg.Nested {
			pool.For(cfg.Sched, 0, m.Rows, cfg.Chunk, func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					var s float64
					for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
						s += m.Val[j] * w.p[m.ColInd[j]]
					}
					w.q[i] = s
				}
			})
			return
		}
		nth := pool.Size()
		pool.For(cfg.Sched, 0, m.Rows, cfg.Chunk, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				w.q[i] = omp.NestedForReduce(nth, cfg.Sched, m.RowPtr[i], m.RowPtr[i+1], cfg.Chunk,
					func(jlo, jhi int64) float64 {
						var s float64
						for j := jlo; j < jhi; j++ {
							s += m.Val[j] * w.p[m.ColInd[j]]
						}
						return s
					})
			}
		})
	}
	rho := pool.ForReduce(cfg.Sched, 0, n, cfg.Chunk, func(lo, hi int64) float64 {
		return dotRange(w.r, w.r, lo, hi)
	})
	for it := 0; it < cgIters; it++ {
		spmv()
		pq := pool.ForReduce(cfg.Sched, 0, n, cfg.Chunk, func(lo, hi int64) float64 {
			return dotRange(w.p, w.q, lo, hi)
		})
		alpha := rho / pq
		pool.For(cfg.Sched, 0, n, cfg.Chunk, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				w.x[i] += alpha * w.p[i]
				w.r[i] -= alpha * w.q[i]
			}
		})
		rhoNew := pool.ForReduce(cfg.Sched, 0, n, cfg.Chunk, func(lo, hi int64) float64 {
			return dotRange(w.r, w.r, lo, hi)
		})
		beta := rhoNew / rho
		rho = rhoNew
		pool.For(cfg.Sched, 0, n, cfg.Chunk, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				w.p[i] = w.r[i] + beta*w.p[i]
			}
		})
	}
}

func (w *cgWork) BindHBC(d *Driver) error {
	// q = A·p: the irregular two-level spmv nest.
	col := &loopnest.Loop{
		Name: "col",
		Bounds: func(env any, idx []int64) (int64, int64) {
			m := env.(*cgWork).m
			return m.RowPtr[idx[0]], m.RowPtr[idx[0]+1]
		},
		Reduce: loopnest.SumFloat64(),
		Body: func(env any, _ []int64, lo, hi int64, acc any) {
			c := env.(*cgWork)
			s := acc.(*float64)
			for j := lo; j < hi; j++ {
				*s += c.m.Val[j] * c.p[c.m.ColInd[j]]
			}
		},
	}
	row := &loopnest.Loop{
		Name:     "row",
		Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*cgWork).m.Rows },
		Children: []*loopnest.Loop{col},
		Post: func(env any, idx []int64, _ any, children []any) {
			env.(*cgWork).q[idx[0]] = *children[0].(*float64)
		},
	}
	if err := d.Load("spmv", &loopnest.Nest{Name: "cg-spmv", Root: row}, w); err != nil {
		return err
	}

	reduceNest := func(name string, f func(c *cgWork, lo, hi int64) float64) *loopnest.Nest {
		return &loopnest.Nest{
			Name: name,
			Root: &loopnest.Loop{
				Name:   name,
				Bounds: func(env any, _ []int64) (int64, int64) { return 0, int64(len(env.(*cgWork).x)) },
				Reduce: loopnest.SumFloat64(),
				Body: func(env any, _ []int64, lo, hi int64, acc any) {
					*acc.(*float64) += f(env.(*cgWork), lo, hi)
				},
			},
		}
	}
	if err := d.Load("dot-pq", reduceNest("cg-dot-pq", func(c *cgWork, lo, hi int64) float64 {
		return dotRange(c.p, c.q, lo, hi)
	}), w); err != nil {
		return err
	}
	if err := d.Load("dot-rr", reduceNest("cg-dot-rr", func(c *cgWork, lo, hi int64) float64 {
		return dotRange(c.r, c.r, lo, hi)
	}), w); err != nil {
		return err
	}

	forNest := func(name string, f func(c *cgWork, lo, hi int64)) *loopnest.Nest {
		return &loopnest.Nest{
			Name: name,
			Root: &loopnest.Loop{
				Name:   name,
				Bounds: func(env any, _ []int64) (int64, int64) { return 0, int64(len(env.(*cgWork).x)) },
				Body: func(env any, _ []int64, lo, hi int64, _ any) {
					f(env.(*cgWork), lo, hi)
				},
			},
		}
	}
	if err := d.Load("xr", forNest("cg-xr", func(c *cgWork, lo, hi int64) {
		for i := lo; i < hi; i++ {
			c.x[i] += c.alpha * c.p[i]
			c.r[i] -= c.alpha * c.q[i]
		}
	}), w); err != nil {
		return err
	}
	return d.Load("pupd", forNest("cg-p", func(c *cgWork, lo, hi int64) {
		for i := lo; i < hi; i++ {
			c.p[i] = c.r[i] + c.beta*c.p[i]
		}
	}), w)
}

func (w *cgWork) RunHBC(d *Driver) {
	w.reset()
	rho := *d.Run("dot-rr").(*float64)
	for it := 0; it < cgIters; it++ {
		d.Run("spmv")
		pq := *d.Run("dot-pq").(*float64)
		w.alpha = rho / pq
		d.Run("xr")
		rhoNew := *d.Run("dot-rr").(*float64)
		w.beta = rhoNew / rho
		rho = rhoNew
		d.Run("pupd")
	}
}

func (w *cgWork) Verify() error {
	if w.oracle == nil {
		w.oracle = make([]float64, len(w.x))
		save := w.x
		w.x = w.oracle
		w.Serial() // scratch vectors r/p/q are reset on every run
		w.x = save
	}
	// CG accumulates rounding differently under promotion; compare with a
	// tolerance scaled to the iteration count.
	return floatsClose(w.x, w.oracle, 1e-6, "cg")
}
