package workloads

import (
	"math"
	"testing"

	"hbc/internal/core"
	"hbc/internal/pulse"
	"hbc/internal/sched"
)

// Per-benchmark behavioral tests beyond the engine matrix: numerical
// properties that must hold regardless of scheduling.

func TestCGConverges(t *testing.T) {
	w, _ := New("cg")
	cg := w.(*cgWork)
	cg.Prepare(0.05)
	cg.Serial()
	// Residual after cgIters iterations: r = b - A x must be much smaller
	// than b (the CageLike matrix is SPD and well conditioned).
	n := int64(len(cg.x))
	ax := make([]float64, n)
	cg.m.SpMV(cg.x, ax)
	var rnorm, bnorm float64
	for i := int64(0); i < n; i++ {
		d := cg.b[i] - ax[i]
		rnorm += d * d
		bnorm += cg.b[i] * cg.b[i]
	}
	if rnorm/bnorm > 1e-6 {
		t.Fatalf("cg residual too large: |r|²/|b|² = %g", rnorm/bnorm)
	}
}

func TestKmeansFindsPlantedClusters(t *testing.T) {
	w, _ := New("kmeans")
	km := w.(*kmeansWork)
	km.Prepare(0.05)
	km.Serial()
	// The planted clusters sit at multiples of 100 per dimension (noise
	// ±0.5); after convergence each centroid must sit within 1 of one
	// plant, and all kmK plants must be claimed.
	claimed := map[int64]bool{}
	for c := int64(0); c < kmK; c++ {
		plant := int64(math.Round(km.centers[c*kmDim] / 100))
		for d := int64(0); d < kmDim; d++ {
			if math.Abs(km.centers[c*kmDim+d]-float64(plant)*100) > 1 {
				t.Fatalf("centroid %d dim %d = %g, not near a plant", c, d, km.centers[c*kmDim+d])
			}
		}
		claimed[plant] = true
	}
	if len(claimed) != kmK {
		t.Fatalf("only %d of %d plants claimed", len(claimed), kmK)
	}
}

func TestSradSmooths(t *testing.T) {
	w, _ := New("srad")
	sr := w.(*sradWork)
	sr.Prepare(0.05)
	variance := func(img []float64) float64 {
		var s, s2 float64
		for _, v := range img {
			s += v
			s2 += v * v
		}
		n := float64(len(img))
		m := s / n
		return s2/n - m*m
	}
	before := variance(sr.img0)
	sr.Serial()
	after := variance(sr.img)
	// Diffusion must reduce image variance (speckle smoothing).
	if after >= before {
		t.Fatalf("srad did not smooth: variance %g -> %g", before, after)
	}
}

func TestFloydWarshallTriangleInequality(t *testing.T) {
	w, _ := New("floyd-warshall")
	fw := w.(*floydWork)
	fw.Prepare(0.03)
	fw.Serial()
	n := fw.n
	// After all-pairs shortest paths: d[i][j] <= d[i][k] + d[k][j] for all
	// triples (spot-check a sample).
	for s := int64(0); s < 200; s++ {
		i, j, k := s%n, (s*7)%n, (s*13)%n
		if fw.dist[i*n+j] > fw.dist[i*n+k]+fw.dist[k*n+j]+1e-9 {
			t.Fatalf("triangle inequality violated at (%d,%d,%d)", i, j, k)
		}
	}
}

func TestBfsLevelsAreMinimal(t *testing.T) {
	w, _ := New("bfs")
	bf := w.(*bfsWork)
	bf.Prepare(0.05)
	bf.Serial()
	// Every reachable vertex's level must be exactly one more than the
	// minimum level among its frontier in-neighbors.
	g := bf.g
	for v := int64(0); v < g.N; v++ {
		lv := bf.level[v]
		if lv <= 0 {
			continue
		}
		best := int32(math.MaxInt32)
		for p := g.InPtr[v]; p < g.InPtr[v+1]; p++ {
			if l := bf.level[g.InAdj[p]]; l >= 0 && l < best {
				best = l
			}
		}
		if best == math.MaxInt32 || lv != best+1 {
			t.Fatalf("vertex %d level %d, min in-neighbor %d", v, lv, best)
		}
	}
}

func TestCCLabelsAreComponentMinima(t *testing.T) {
	w, _ := New("cc")
	cc := w.(*ccWork)
	cc.Prepare(0.05)
	cc.Serial()
	// Fixed point: no vertex can improve from its in-neighbors.
	g := cc.g
	for v := int64(0); v < g.N; v++ {
		if m := cc.minNeighbor(g.InPtr[v], g.InPtr[v+1]); m < cc.label[v] {
			t.Fatalf("cc not at fixed point at vertex %d", v)
		}
	}
}

func TestTTVZeroVectorGivesZero(t *testing.T) {
	w, _ := New("ttv")
	tv := w.(*tensorWork)
	tv.Prepare(0.02)
	for i := range tv.vec {
		tv.vec[i] = 0
	}
	tv.oracle = nil
	tv.Serial()
	for i, v := range tv.out {
		if v != 0 {
			t.Fatalf("ttv with zero vector: out[%d] = %g", i, v)
		}
	}
}

// TestRepeatedHBCRunsAreStable re-runs one workload many times on a live
// driver: adaptive state accumulates but results must stay exact.
func TestRepeatedHBCRunsAreStable(t *testing.T) {
	w, err := New("spmv-powerlaw")
	if err != nil {
		t.Fatal(err)
	}
	w.Prepare(0.02)
	team := sched.NewTeam(2)
	defer team.Close()
	d := NewDriver(team, pulse.NewTimer(), core.DefaultHeartbeat, core.Options{})
	defer d.Close()
	if err := w.BindHBC(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.RunHBC(d)
		if err := w.Verify(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}
