package workloads

// Differential correctness for the schedule catalog: every registered
// workload must compute the oracle's answer under every scheduling policy.
// Schedules only change how leaf iterations are diced into chunks, never
// which iterations run, so any divergence here is a policy bug (a dropped
// or double-dealt range), not a workload bug.

import (
	"testing"
	"time"

	"hbc/internal/core"
	"hbc/internal/pulse"
	"hbc/internal/sched"
)

func TestSchedulePoliciesMatchOracle(t *testing.T) {
	policies := []core.ChunkKind{
		core.ChunkStatic, core.ChunkGuided, core.ChunkFactoring,
		core.ChunkTrapezoid, core.ChunkWeighted, core.ChunkAuto,
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			w.Prepare(testScale)
			for _, kind := range policies {
				team := sched.NewTeam(3)
				drv := NewDriver(team, pulse.NewEveryN(16), 50*time.Microsecond, core.Options{
					Chunk: core.ChunkPolicy{
						Kind:        kind,
						Size:        4, // static schedule's chunk
						ProfileRuns: 1,
						Weights:     []float64{2, 1, 1}, // exercised by weighted only
					},
				})
				if err := w.BindHBC(drv); err != nil {
					t.Fatal(err)
				}
				runs := 1
				if kind == core.ChunkAuto {
					// Enough invocations to profile every candidate and run
					// past the lock, so post-lock delegation is covered too.
					runs = len(core.ScheduleNames())
				}
				for i := 0; i < runs; i++ {
					w.RunHBC(drv)
				}
				drv.Close()
				team.Close()
				if err := w.Verify(); err != nil {
					t.Fatalf("%v schedule: %v", kind, err)
				}
			}
		})
	}
}
