package workloads

import (
	"testing"

	"hbc/internal/core"
	"hbc/internal/omp"
	"hbc/internal/pulse"
	"hbc/internal/sched"
)

// testScale keeps inputs tiny so the full matrix of engines × benchmarks
// runs in seconds.
const testScale = 0.02

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"bfs", "cc", "cf", "cg", "floyd-warshall", "kmeans",
		"mandelbrot", "mandelbulb", "plus-reduce-array", "pr", "pr-delta",
		"spmv-arrowhead", "spmv-powerlaw", "spmv-powerlaw-reverse",
		"spmv-random", "srad", "sssp", "ttm", "ttv",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestSetsPartitionSensibly(t *testing.T) {
	if len(TPALSet()) != 8 {
		t.Fatalf("TPAL set = %v, want 8 benchmarks", TPALSet())
	}
	if len(ManualSet()) < 5 {
		t.Fatalf("manual set = %v, want >= 5", ManualSet())
	}
	irr, reg := Irregular(), RegularSet()
	// One registered input (spmv-powerlaw-reverse) is Aux: used only by
	// Fig. 12, excluded from both sets.
	if len(irr)+len(reg) != len(Names())-1 {
		t.Fatalf("irregular(%d) + regular(%d) != all(%d) - 1 aux", len(irr), len(reg), len(Names()))
	}
	if len(irr) != 13 {
		t.Fatalf("irregular = %v, want the paper's 13-benchmark Fig. 4 set", irr)
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Fatal("New accepted unknown name")
	}
}

// TestSerialSelfConsistent: Serial followed by Verify must always pass
// (Verify's oracle is an independent recomputation).
func TestSerialSelfConsistent(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			w.Prepare(testScale)
			w.Serial()
			if err := w.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOMPVariantsMatchOracle(t *testing.T) {
	pool := omp.NewPool(3)
	defer pool.Close()
	cfgs := []OMPConfig{
		{Sched: omp.Dynamic, Chunk: 1},
		{Sched: omp.Dynamic, Chunk: 8},
		{Sched: omp.Static},
		{Sched: omp.Guided, Chunk: 2},
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			w.Prepare(testScale)
			for _, cfg := range cfgs {
				w.OMP(pool, cfg)
				if err := w.Verify(); err != nil {
					t.Fatalf("%+v: %v", cfg, err)
				}
			}
		})
	}
}

func TestOMPNestedMatchesOracle(t *testing.T) {
	// Nested mode is slow by design; a couple of representative benchmarks
	// suffice to prove correctness.
	pool := omp.NewPool(2)
	defer pool.Close()
	for _, name := range []string{"spmv-arrowhead", "mandelbrot", "ttv", "pr"} {
		w, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		w.Prepare(0.01)
		w.OMP(pool, OMPConfig{Sched: omp.Dynamic, Chunk: 1, Nested: true})
		if err := w.Verify(); err != nil {
			t.Fatalf("%s nested: %v", name, err)
		}
	}
}

// runHBC binds and runs a workload under the given source and options.
func runHBC(t *testing.T, name string, workers int, src pulse.Source, opts core.Options) {
	t.Helper()
	w, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	w.Prepare(testScale)
	team := sched.NewTeam(workers)
	defer team.Close()
	d := NewDriver(team, src, core.DefaultHeartbeat, opts)
	defer d.Close()
	if err := w.BindHBC(d); err != nil {
		t.Fatal(err)
	}
	w.RunHBC(d)
	if err := w.Verify(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestHBCNoHeartbeatsMatchesOracle(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			runHBC(t, name, 2, pulse.NewNever(), core.Options{})
		})
	}
}

func TestHBCPromoteAggressivelyMatchesOracle(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			runHBC(t, name, 3, pulse.NewEveryN(3),
				core.Options{Chunk: core.ChunkPolicy{Kind: core.ChunkStatic, Size: 4}})
		})
	}
}

func TestHBCTimerMatchesOracle(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			runHBC(t, name, 2, pulse.NewTimer(), core.Options{})
		})
	}
}

func TestHBCTPALModeMatchesOracle(t *testing.T) {
	for _, name := range TPALSet() {
		name := name
		t.Run(name, func(t *testing.T) {
			runHBC(t, name, 2, pulse.NewEveryN(5), core.Options{
				Mode:  core.ModeTPAL,
				Chunk: core.ChunkPolicy{Kind: core.ChunkStatic, Size: 8},
			})
		})
	}
}

func TestMandelbrotInputSwitching(t *testing.T) {
	w, _ := New("mandelbrot")
	mb := w.(*mandelWork)
	mb.Prepare(0.02)
	mb.UseHighLatencyInput()
	mb.Serial()
	if err := mb.Verify(); err != nil {
		t.Fatal(err)
	}
	// Inside the set every pixel must hit maxIter.
	for _, v := range mb.out[:100] {
		if v != int32(mb.maxIter) {
			t.Fatalf("high-latency input escaped early: %d", v)
		}
	}
	mb.UseLowLatencyInput()
	mb.Serial()
	if err := mb.Verify(); err != nil {
		t.Fatal(err)
	}
	// Far outside the set pixels escape immediately.
	if mb.out[0] > 3 {
		t.Fatalf("low-latency corner pixel took %d iterations", mb.out[0])
	}
}

func TestDriverStatsAggregation(t *testing.T) {
	w, _ := New("spmv-powerlaw")
	w.Prepare(testScale)
	team := sched.NewTeam(2)
	defer team.Close()
	d := NewDriver(team, pulse.NewEveryN(4), core.DefaultHeartbeat,
		core.Options{Chunk: core.ChunkPolicy{Kind: core.ChunkStatic, Size: 2}})
	defer d.Close()
	if err := w.BindHBC(d); err != nil {
		t.Fatal(err)
	}
	w.RunHBC(d)
	promos, byLevel := d.Stats()
	if promos == 0 {
		t.Fatal("no promotions recorded")
	}
	var sum int64
	for _, v := range byLevel {
		sum += v
	}
	if sum != promos {
		t.Fatalf("byLevel %v does not sum to %d", byLevel, promos)
	}
}

// TestStaticDriverMatchesOracle runs every benchmark under the static
// scheduler — the paper's §6.8 complementary policy — and verifies it.
func TestStaticDriverMatchesOracle(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			w.Prepare(testScale)
			team := sched.NewTeam(3)
			defer team.Close()
			d := NewStaticDriver(team)
			defer d.Close()
			if err := w.BindHBC(d); err != nil {
				t.Fatal(err)
			}
			w.RunHBC(d)
			if err := w.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
