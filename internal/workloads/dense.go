package workloads

import (
	"math"

	"hbc/internal/loopnest"
	"hbc/internal/omp"
)

// --- plus-reduce-array --------------------------------------------------------

// plusReduceWork sums a large float64 array — the paper's simplest regular
// benchmark, a pure 1-level reduction.
type plusReduceWork struct {
	data   []float64
	result float64
}

func init() {
	register("plus-reduce-array", func() Workload { return &plusReduceWork{} })
}

func (w *plusReduceWork) Info() Info {
	return Info{Name: "plus-reduce-array", Regular: true, TPALSet: true, ManualSet: true, Levels: 1}
}

func (w *plusReduceWork) Prepare(scale float64) {
	w.data = make([]float64, scaled(4_000_000, scale))
	for i := range w.data {
		w.data[i] = float64(i%17) - 8
	}
}

func (w *plusReduceWork) sum(lo, hi int64) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += w.data[i]
	}
	return s
}

func (w *plusReduceWork) Serial() { w.result = w.sum(0, int64(len(w.data))) }

func (w *plusReduceWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	w.result = pool.ForReduce(cfg.Sched, 0, int64(len(w.data)), cfg.Chunk, w.sum)
}

func (w *plusReduceWork) nest() *loopnest.Nest {
	return &loopnest.Nest{
		Name: "plus-reduce-array",
		Root: &loopnest.Loop{
			Name: "sum",
			Bounds: func(env any, _ []int64) (int64, int64) {
				return 0, int64(len(env.(*plusReduceWork).data))
			},
			Reduce: loopnest.SumFloat64(),
			Body: func(env any, _ []int64, lo, hi int64, acc any) {
				*acc.(*float64) += env.(*plusReduceWork).sum(lo, hi)
			},
		},
	}
}

func (w *plusReduceWork) BindHBC(d *Driver) error { return d.Load("sum", w.nest(), w) }

func (w *plusReduceWork) RunHBC(d *Driver) {
	w.result = *d.Run("sum").(*float64)
}

func (w *plusReduceWork) Verify() error {
	want := w.sum(0, int64(len(w.data)))
	return floatsClose([]float64{w.result}, []float64{want}, 1e-6, "plus-reduce-array")
}

// --- floyd-warshall -------------------------------------------------------------

// floydWork is all-pairs shortest paths: the outer k loop is sequential;
// for each k the (i, j) relaxation is a two-level DOALL nest — a regular
// workload where static scheduling shines (Fig. 16).
type floydWork struct {
	n      int64
	dist   []float64
	init   []float64
	oracle []float64
	k      int64 // current pivot for the HBC nest
}

func init() { register("floyd-warshall", func() Workload { return &floydWork{} }) }

func (w *floydWork) Info() Info {
	return Info{Name: "floyd-warshall", Regular: true, TPALSet: true, Levels: 2}
}

func (w *floydWork) Prepare(scale float64) {
	w.n = scaled(180, math.Sqrt(scale))
	w.init = make([]float64, w.n*w.n)
	for i := int64(0); i < w.n; i++ {
		for j := int64(0); j < w.n; j++ {
			switch {
			case i == j:
				w.init[i*w.n+j] = 0
			case (i+j)%3 == 0:
				w.init[i*w.n+j] = float64((i*7+j*13)%100 + 1)
			default:
				w.init[i*w.n+j] = 1e9 // "infinity"
			}
		}
	}
	w.dist = make([]float64, len(w.init))
	w.oracle = nil
}

func (w *floydWork) relaxRow(k, i, jlo, jhi int64) {
	d := w.dist
	n := w.n
	dik := d[i*n+k]
	for j := jlo; j < jhi; j++ {
		if via := dik + d[k*n+j]; via < d[i*n+j] {
			d[i*n+j] = via
		}
	}
}

func (w *floydWork) Serial() {
	copy(w.dist, w.init)
	for k := int64(0); k < w.n; k++ {
		for i := int64(0); i < w.n; i++ {
			w.relaxRow(k, i, 0, w.n)
		}
	}
}

func (w *floydWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	copy(w.dist, w.init)
	for k := int64(0); k < w.n; k++ {
		k := k
		if !cfg.Nested {
			pool.For(cfg.Sched, 0, w.n, cfg.Chunk, func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					w.relaxRow(k, i, 0, w.n)
				}
			})
			continue
		}
		nth := pool.Size()
		pool.For(cfg.Sched, 0, w.n, cfg.Chunk, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				i := i
				omp.NestedFor(nth, cfg.Sched, 0, w.n, cfg.Chunk, func(jlo, jhi int64) {
					w.relaxRow(k, i, jlo, jhi)
				})
			}
		})
	}
}

func (w *floydWork) nest() *loopnest.Nest {
	jLoop := &loopnest.Loop{
		Name:   "j",
		Bounds: func(env any, _ []int64) (int64, int64) { return 0, env.(*floydWork).n },
		Body: func(env any, idx []int64, lo, hi int64, _ any) {
			f := env.(*floydWork)
			f.relaxRow(f.k, idx[0], lo, hi)
		},
	}
	iLoop := &loopnest.Loop{
		Name:     "i",
		Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*floydWork).n },
		Children: []*loopnest.Loop{jLoop},
	}
	return &loopnest.Nest{Name: "floyd-warshall", Root: iLoop}
}

func (w *floydWork) BindHBC(d *Driver) error { return d.Load("relax", w.nest(), w) }

func (w *floydWork) RunHBC(d *Driver) {
	copy(w.dist, w.init)
	for k := int64(0); k < w.n; k++ {
		w.k = k
		d.Run("relax")
	}
}

func (w *floydWork) Verify() error {
	if w.oracle == nil {
		w.oracle = make([]float64, len(w.dist))
		save := w.dist
		w.dist = w.oracle
		w.Serial()
		w.dist = save
	}
	return floatsClose(w.dist, w.oracle, 1e-9, "floyd-warshall")
}

// --- kmeans ----------------------------------------------------------------------

const (
	kmDim   = 4
	kmK     = 8
	kmIters = 4
)

// kmeansWork is Rodinia's kmeans: per iteration, every point finds its
// nearest centroid (DOALL) and contributes to the per-cluster coordinate
// sums — an array reduction that HBC parallelizes while the OpenMP
// implementation accumulates serially on the main thread, the effect behind
// kmeans being the one regular benchmark HBC wins (§6.8).
type kmeansWork struct {
	n        int64
	pts      []float64 // n × kmDim
	centers  []float64 // kmK × kmDim, the output
	assign   []int32
	oracleC  []float64
	oracleA  []int32
	haveOrcl bool
}

// kmAcc is the kmeans array-reduction accumulator.
type kmAcc struct {
	sums   []float64 // kmK × kmDim
	counts []int64   // kmK
}

func init() { register("kmeans", func() Workload { return &kmeansWork{} }) }

func (w *kmeansWork) Info() Info {
	return Info{Name: "kmeans", Regular: true, TPALSet: true, Levels: 1}
}

func (w *kmeansWork) Prepare(scale float64) {
	w.n = scaled(150_000, scale)
	w.pts = make([]float64, w.n*kmDim)
	// Well-separated synthetic clusters: spacing 100, noise < 1, so nearest
	// centroids are unambiguous and the result is promotion-order
	// independent.
	for i := int64(0); i < w.n; i++ {
		c := i % kmK
		for d := int64(0); d < kmDim; d++ {
			noise := float64((i*31+d*17)%100)/100 - 0.5
			w.pts[i*kmDim+d] = float64(c)*100 + noise
		}
	}
	w.centers = make([]float64, kmK*kmDim)
	w.assign = make([]int32, w.n)
	w.haveOrcl = false
}

func (w *kmeansWork) initCenters(cs []float64) {
	for c := int64(0); c < kmK; c++ {
		for d := int64(0); d < kmDim; d++ {
			// Deliberately offset starting centroids.
			cs[c*kmDim+d] = float64(c)*100 + 10
		}
	}
}

// assignRange assigns points [lo, hi) to their nearest centroid and
// accumulates sums/counts into acc.
func (w *kmeansWork) assignRange(cs []float64, lo, hi int64, acc *kmAcc) {
	for i := lo; i < hi; i++ {
		best, bestD := int32(0), math.MaxFloat64
		for c := int64(0); c < kmK; c++ {
			var dist float64
			for d := int64(0); d < kmDim; d++ {
				diff := w.pts[i*kmDim+d] - cs[c*kmDim+d]
				dist += diff * diff
			}
			if dist < bestD {
				bestD, best = dist, int32(c)
			}
		}
		w.assign[i] = best
		if acc != nil {
			acc.counts[best]++
			for d := int64(0); d < kmDim; d++ {
				acc.sums[int64(best)*kmDim+d] += w.pts[i*kmDim+d]
			}
		}
	}
}

func newKmAcc() *kmAcc {
	return &kmAcc{sums: make([]float64, kmK*kmDim), counts: make([]int64, kmK)}
}

func (a *kmAcc) reset() {
	for i := range a.sums {
		a.sums[i] = 0
	}
	for i := range a.counts {
		a.counts[i] = 0
	}
}

func (a *kmAcc) merge(b *kmAcc) {
	for i := range a.sums {
		a.sums[i] += b.sums[i]
	}
	for i := range a.counts {
		a.counts[i] += b.counts[i]
	}
}

func (w *kmeansWork) updateCenters(cs []float64, acc *kmAcc) {
	for c := int64(0); c < kmK; c++ {
		if acc.counts[c] == 0 {
			continue
		}
		for d := int64(0); d < kmDim; d++ {
			cs[c*kmDim+d] = acc.sums[c*kmDim+d] / float64(acc.counts[c])
		}
	}
}

func (w *kmeansWork) Serial() {
	w.initCenters(w.centers)
	acc := newKmAcc()
	for it := 0; it < kmIters; it++ {
		acc.reset()
		w.assignRange(w.centers, 0, w.n, acc)
		w.updateCenters(w.centers, acc)
	}
}

func (w *kmeansWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	w.initCenters(w.centers)
	acc := newKmAcc()
	for it := 0; it < kmIters; it++ {
		// Parallel assignment phase.
		pool.For(cfg.Sched, 0, w.n, cfg.Chunk, func(lo, hi int64) {
			w.assignRange(w.centers, lo, hi, nil)
		})
		// As in the Rodinia OpenMP implementation the paper uses, the array
		// reduction runs sequentially on the main thread (§6.8).
		acc.reset()
		for i := int64(0); i < w.n; i++ {
			c := w.assign[i]
			acc.counts[c]++
			for d := int64(0); d < kmDim; d++ {
				acc.sums[int64(c)*kmDim+d] += w.pts[i*kmDim+d]
			}
		}
		w.updateCenters(w.centers, acc)
	}
}

func (w *kmeansWork) nest() *loopnest.Nest {
	red := &loopnest.Reduction{
		Fresh: func() any { return newKmAcc() },
		Reset: func(acc any) { acc.(*kmAcc).reset() },
		Merge: func(into, from any) { into.(*kmAcc).merge(from.(*kmAcc)) },
	}
	return &loopnest.Nest{
		Name: "kmeans",
		Root: &loopnest.Loop{
			Name:   "points",
			Bounds: func(env any, _ []int64) (int64, int64) { return 0, env.(*kmeansWork).n },
			Reduce: red,
			Body: func(env any, _ []int64, lo, hi int64, acc any) {
				k := env.(*kmeansWork)
				k.assignRange(k.centers, lo, hi, acc.(*kmAcc))
			},
		},
	}
}

func (w *kmeansWork) BindHBC(d *Driver) error { return d.Load("assign", w.nest(), w) }

func (w *kmeansWork) RunHBC(d *Driver) {
	w.initCenters(w.centers)
	for it := 0; it < kmIters; it++ {
		acc := d.Run("assign").(*kmAcc)
		w.updateCenters(w.centers, acc)
	}
}

func (w *kmeansWork) Verify() error {
	if !w.haveOrcl {
		w.oracleC = make([]float64, len(w.centers))
		w.oracleA = make([]int32, len(w.assign))
		saveC, saveA := w.centers, w.assign
		w.centers, w.assign = w.oracleC, w.oracleA
		w.Serial()
		w.centers, w.assign = saveC, saveA
		w.haveOrcl = true
	}
	if err := int32sEqual(w.assign, w.oracleA, "kmeans assignments"); err != nil {
		return err
	}
	return floatsClose(w.centers, w.oracleC, 1e-8, "kmeans centers")
}

// --- srad -------------------------------------------------------------------------

const sradIters = 3

// sradWork is Rodinia's speckle-reducing anisotropic diffusion on a 2D
// image: per iteration, a parallel statistics reduction over the image,
// then two two-level DOALL sweeps (diffusion coefficients, then the image
// update). Regular — every cell costs the same.
type sradWork struct {
	rows, cols int64
	img        []float64
	img0       []float64
	coef       []float64
	oracle     []float64
	snapRef    []float64 // Jacobi snapshot read by the update sweep
	q0sqr      float64   // current iteration's diffusion threshold
	lambda     float64
}

func init() { register("srad", func() Workload { return &sradWork{} }) }

func (w *sradWork) Info() Info {
	return Info{Name: "srad", Regular: true, TPALSet: true, Levels: 2}
}

func (w *sradWork) Prepare(scale float64) {
	side := scaled(300, math.Sqrt(scale))
	w.rows, w.cols = side, side
	w.lambda = 0.5
	w.img0 = make([]float64, w.rows*w.cols)
	for i := range w.img0 {
		w.img0[i] = math.Exp(float64(i%255)/255 - 0.5)
	}
	w.img = make([]float64, len(w.img0))
	w.coef = make([]float64, len(w.img0))
	w.oracle = nil
}

func (w *sradWork) at(i, j int64) int64 {
	// Clamped neighbor addressing.
	if i < 0 {
		i = 0
	}
	if i >= w.rows {
		i = w.rows - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= w.cols {
		j = w.cols - 1
	}
	return i*w.cols + j
}

// stats returns (sum, sumSq) over image rows [lo, hi).
func (w *sradWork) stats(lo, hi int64) (float64, float64) {
	var s, s2 float64
	for i := lo; i < hi; i++ {
		for j := int64(0); j < w.cols; j++ {
			v := w.img[i*w.cols+j]
			s += v
			s2 += v * v
		}
	}
	return s, s2
}

// coefRow computes diffusion coefficients for cells (i, [jlo,jhi)).
func (w *sradWork) coefRow(i, jlo, jhi int64) {
	for j := jlo; j < jhi; j++ {
		c := w.img[w.at(i, j)]
		dN := w.img[w.at(i-1, j)] - c
		dS := w.img[w.at(i+1, j)] - c
		dW := w.img[w.at(i, j-1)] - c
		dE := w.img[w.at(i, j+1)] - c
		g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (c * c)
		l := (dN + dS + dW + dE) / c
		num := 0.5*g2 - (1.0/16.0)*l*l
		den := 1 + 0.25*l
		qsqr := num / (den * den)
		den = (qsqr - w.q0sqr) / (w.q0sqr * (1 + w.q0sqr))
		cc := 1.0 / (1.0 + den)
		if cc < 0 {
			cc = 0
		} else if cc > 1 {
			cc = 1
		}
		w.coef[i*w.cols+j] = cc
	}
}

func (w *sradWork) setQ0(sum, sumSq float64) {
	n := float64(w.rows * w.cols)
	mean := sum / n
	variance := sumSq/n - mean*mean
	w.q0sqr = variance / (mean * mean)
}

func (w *sradWork) Serial() {
	copy(w.img, w.img0)
	if w.snapRef == nil {
		w.snapRef = make([]float64, len(w.img))
	}
	for it := 0; it < sradIters; it++ {
		s, s2 := w.stats(0, w.rows)
		w.setQ0(s, s2)
		for i := int64(0); i < w.rows; i++ {
			w.coefRow(i, 0, w.cols)
		}
		// The update reads neighbors' pre-update values, so all variants
		// run Jacobi from a snapshot; the buffer is reused across runs.
		copy(w.snapRef, w.img)
		for i := int64(0); i < w.rows; i++ {
			w.updateRowFrom(w.snapRef, i, 0, w.cols)
		}
	}
}

// updateRowFrom is updateRow reading the img snapshot (Jacobi).
func (w *sradWork) updateRowFrom(src []float64, i, jlo, jhi int64) {
	for j := jlo; j < jhi; j++ {
		c := src[w.at(i, j)]
		cN := w.coef[w.at(i, j)]
		cS := w.coef[w.at(i+1, j)]
		cW := w.coef[w.at(i, j)]
		cE := w.coef[w.at(i, j+1)]
		d := cN*(src[w.at(i-1, j)]-c) + cS*(src[w.at(i+1, j)]-c) +
			cW*(src[w.at(i, j-1)]-c) + cE*(src[w.at(i, j+1)]-c)
		w.img[i*w.cols+j] = c + 0.25*w.lambda*d
	}
}

func (w *sradWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	copy(w.img, w.img0)
	snap := make([]float64, len(w.img))
	for it := 0; it < sradIters; it++ {
		s := pool.ForReduce(cfg.Sched, 0, w.rows, cfg.Chunk, func(lo, hi int64) float64 {
			ps, _ := w.stats(lo, hi)
			return ps
		})
		s2 := pool.ForReduce(cfg.Sched, 0, w.rows, cfg.Chunk, func(lo, hi int64) float64 {
			_, ps2 := w.stats(lo, hi)
			return ps2
		})
		w.setQ0(s, s2)
		pool.For(cfg.Sched, 0, w.rows, cfg.Chunk, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				w.coefRow(i, 0, w.cols)
			}
		})
		copy(snap, w.img)
		pool.For(cfg.Sched, 0, w.rows, cfg.Chunk, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				w.updateRowFrom(snap, i, 0, w.cols)
			}
		})
	}
}

// sradStats is the accumulator of the statistics reduction.
type sradStats struct{ s, s2 float64 }

func (w *sradWork) nests() (stats, coef, update *loopnest.Nest) {
	statsNest := &loopnest.Nest{
		Name: "srad-stats",
		Root: &loopnest.Loop{
			Name:   "stat-rows",
			Bounds: func(env any, _ []int64) (int64, int64) { return 0, env.(*sradWork).rows },
			Reduce: &loopnest.Reduction{
				Fresh: func() any { return &sradStats{} },
				Reset: func(a any) { *a.(*sradStats) = sradStats{} },
				Merge: func(into, from any) {
					i, f := into.(*sradStats), from.(*sradStats)
					i.s += f.s
					i.s2 += f.s2
				},
			},
			Body: func(env any, _ []int64, lo, hi int64, acc any) {
				sw := env.(*sradWork)
				a := acc.(*sradStats)
				ps, ps2 := sw.stats(lo, hi)
				a.s += ps
				a.s2 += ps2
			},
		},
	}
	coefInner := &loopnest.Loop{
		Name:   "coef-cols",
		Bounds: func(env any, _ []int64) (int64, int64) { return 0, env.(*sradWork).cols },
		Body: func(env any, idx []int64, lo, hi int64, _ any) {
			env.(*sradWork).coefRow(idx[0], lo, hi)
		},
	}
	coefNest := &loopnest.Nest{
		Name: "srad-coef",
		Root: &loopnest.Loop{
			Name:     "coef-rows",
			Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*sradWork).rows },
			Children: []*loopnest.Loop{coefInner},
		},
	}
	updateInner := &loopnest.Loop{
		Name:   "upd-cols",
		Bounds: func(env any, _ []int64) (int64, int64) { return 0, env.(*sradWork).cols },
		Body: func(env any, idx []int64, lo, hi int64, _ any) {
			sw := env.(*sradWork)
			sw.updateRowFrom(sw.snapRef, idx[0], lo, hi)
		},
	}
	updateNest := &loopnest.Nest{
		Name: "srad-update",
		Root: &loopnest.Loop{
			Name:     "upd-rows",
			Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*sradWork).rows },
			Children: []*loopnest.Loop{updateInner},
		},
	}
	return statsNest, coefNest, updateNest
}

func (w *sradWork) BindHBC(d *Driver) error {
	sn, cn, un := w.nests()
	if err := d.Load("stats", sn, w); err != nil {
		return err
	}
	if err := d.Load("coef", cn, w); err != nil {
		return err
	}
	return d.Load("update", un, w)
}

func (w *sradWork) RunHBC(d *Driver) {
	copy(w.img, w.img0)
	if w.snapRef == nil {
		w.snapRef = make([]float64, len(w.img))
	}
	for it := 0; it < sradIters; it++ {
		st := d.Run("stats").(*sradStats)
		w.setQ0(st.s, st.s2)
		d.Run("coef")
		copy(w.snapRef, w.img)
		d.Run("update")
	}
}

func (w *sradWork) Verify() error {
	if w.oracle == nil {
		w.oracle = make([]float64, len(w.img))
		save := w.img
		w.img = w.oracle
		w.Serial()
		w.img = save
	}
	return floatsClose(w.img, w.oracle, 1e-7, "srad")
}
