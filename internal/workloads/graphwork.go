package workloads

import (
	"fmt"
	"math"
	"sync"

	"hbc/internal/graph"
	"hbc/internal/loopnest"
	"hbc/internal/omp"
)

// The six GraphIt-derived benchmarks. All use the DensePull direction: the
// outer DOALL loop runs over destination vertices and the inner loop
// gathers from in-neighbors, so iteration cost follows the power-law
// in-degree distribution of the RMAT input (the Twitter/LiveJournal
// stand-in). GraphIt's emitted OpenMP code parallelizes only the vertex
// loop; the HBC variants expose the edge loops as nested DOALLs too.

const (
	grScale  = 13 // 8192 vertices at scale 1
	grDegree = 12
	prIters  = 8
	cfIters  = 3
	cfStep   = 0.001
)

// grBase carries the shared graph plumbing.
type grBase struct {
	g *graph.Graph
}

// graphCache shares one immutable RMAT instance per scale bucket among the
// six graph workloads — the kernels only read the structure, and
// regenerating a half-million-edge graph per benchmark would dominate
// harness time.
var graphCache = struct {
	mu sync.Mutex
	m  map[int]*graph.Graph
}{m: map[int]*graph.Graph{}}

func (b *grBase) prepGraph(scale float64) {
	s := grScale
	switch {
	case scale <= 0.1:
		s = grScale - 4
	case scale <= 0.3:
		s = grScale - 2
	case scale <= 0.6:
		s = grScale - 1
	case scale >= 3:
		s = grScale + 1
	}
	graphCache.mu.Lock()
	defer graphCache.mu.Unlock()
	if g, ok := graphCache.m[s]; ok {
		b.g = g
		return
	}
	g := graph.RMAT(s, grDegree, 11)
	graphCache.m[s] = g
	b.g = g
}

// minFloat64 builds a float64 min-reduction with +Inf identity.
func minFloat64() *loopnest.Reduction {
	return &loopnest.Reduction{
		Fresh: func() any { v := new(float64); *v = math.Inf(1); return v },
		Reset: func(a any) { *a.(*float64) = math.Inf(1) },
		Merge: func(into, from any) {
			a, b := into.(*float64), from.(*float64)
			if *b < *a {
				*a = *b
			}
		},
	}
}

// minInt32 builds an int32 min-reduction with MaxInt32 identity.
func minInt32() *loopnest.Reduction {
	return &loopnest.Reduction{
		Fresh: func() any { v := new(int32); *v = math.MaxInt32; return v },
		Reset: func(a any) { *a.(*int32) = math.MaxInt32 },
		Merge: func(into, from any) {
			a, b := into.(*int32), from.(*int32)
			if *b < *a {
				*a = *b
			}
		},
	}
}

// --- pagerank -----------------------------------------------------------------

type prWork struct {
	grBase
	rank, contrib, next []float64
	oracle              []float64
}

func init() { register("pr", func() Workload { return &prWork{} }) }

func (w *prWork) Info() Info { return Info{Name: "pr", Levels: 2} }

func (w *prWork) Prepare(scale float64) {
	w.prepGraph(scale)
	w.rank = make([]float64, w.g.N)
	w.contrib = make([]float64, w.g.N)
	w.next = make([]float64, w.g.N)
	w.oracle = nil
}

func (w *prWork) initRank() {
	for v := range w.rank {
		w.rank[v] = 1 / float64(w.g.N)
	}
}

func (w *prWork) contribRange(lo, hi int64) {
	for u := lo; u < hi; u++ {
		if w.g.OutDeg[u] > 0 {
			w.contrib[u] = w.rank[u] / float64(w.g.OutDeg[u])
		} else {
			w.contrib[u] = 0
		}
	}
}

func (w *prWork) gatherEdges(v, plo, phi int64) float64 {
	var s float64
	for p := plo; p < phi; p++ {
		s += w.contrib[w.g.InAdj[p]]
	}
	return s
}

func (w *prWork) base() float64 { return (1 - graph.PageRankDamping) / float64(w.g.N) }

func (w *prWork) Serial() {
	w.initRank()
	for it := 0; it < prIters; it++ {
		w.contribRange(0, w.g.N)
		for v := int64(0); v < w.g.N; v++ {
			w.next[v] = w.base() + graph.PageRankDamping*w.gatherEdges(v, w.g.InPtr[v], w.g.InPtr[v+1])
		}
		w.rank, w.next = w.next, w.rank
	}
}

func (w *prWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	w.initRank()
	for it := 0; it < prIters; it++ {
		pool.For(cfg.Sched, 0, w.g.N, cfg.Chunk, func(lo, hi int64) { w.contribRange(lo, hi) })
		if !cfg.Nested {
			pool.For(cfg.Sched, 0, w.g.N, cfg.Chunk, func(lo, hi int64) {
				for v := lo; v < hi; v++ {
					w.next[v] = w.base() + graph.PageRankDamping*w.gatherEdges(v, w.g.InPtr[v], w.g.InPtr[v+1])
				}
			})
		} else {
			nth := pool.Size()
			pool.For(cfg.Sched, 0, w.g.N, cfg.Chunk, func(lo, hi int64) {
				for v := lo; v < hi; v++ {
					v := v
					s := omp.NestedForReduce(nth, cfg.Sched, w.g.InPtr[v], w.g.InPtr[v+1], cfg.Chunk,
						func(plo, phi int64) float64 { return w.gatherEdges(v, plo, phi) })
					w.next[v] = w.base() + graph.PageRankDamping*s
				}
			})
		}
		w.rank, w.next = w.next, w.rank
	}
}

func (w *prWork) BindHBC(d *Driver) error {
	contrib := &loopnest.Nest{
		Name: "pr-contrib",
		Root: &loopnest.Loop{
			Name:   "contrib",
			Bounds: func(env any, _ []int64) (int64, int64) { return 0, env.(*prWork).g.N },
			Body: func(env any, _ []int64, lo, hi int64, _ any) {
				env.(*prWork).contribRange(lo, hi)
			},
		},
	}
	edges := &loopnest.Loop{
		Name: "edges",
		Bounds: func(env any, idx []int64) (int64, int64) {
			g := env.(*prWork).g
			return g.InPtr[idx[0]], g.InPtr[idx[0]+1]
		},
		Reduce: loopnest.SumFloat64(),
		Body: func(env any, idx []int64, lo, hi int64, acc any) {
			*acc.(*float64) += env.(*prWork).gatherEdges(idx[0], lo, hi)
		},
	}
	gather := &loopnest.Nest{
		Name: "pr-gather",
		Root: &loopnest.Loop{
			Name:     "verts",
			Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*prWork).g.N },
			Children: []*loopnest.Loop{edges},
			Post: func(env any, idx []int64, _ any, children []any) {
				p := env.(*prWork)
				p.next[idx[0]] = p.base() + graph.PageRankDamping**children[0].(*float64)
			},
		},
	}
	if err := d.Load("contrib", contrib, w); err != nil {
		return err
	}
	return d.Load("gather", gather, w)
}

func (w *prWork) RunHBC(d *Driver) {
	w.initRank()
	for it := 0; it < prIters; it++ {
		d.Run("contrib")
		d.Run("gather")
		w.rank, w.next = w.next, w.rank
	}
}

func (w *prWork) Verify() error {
	if w.oracle == nil {
		w.oracle = graph.PageRank(w.g, prIters)
	}
	return floatsClose(w.rank, w.oracle, 1e-9, "pr")
}

// --- pagerank-delta ---------------------------------------------------------------

const prDeltaEps = 1e-7

type prDeltaWork struct {
	grBase
	rank, delta, contrib, ndelta []float64
	oracle                       []float64
}

func init() { register("pr-delta", func() Workload { return &prDeltaWork{} }) }

func (w *prDeltaWork) Info() Info { return Info{Name: "pr-delta", Levels: 2} }

func (w *prDeltaWork) Prepare(scale float64) {
	w.prepGraph(scale)
	n := w.g.N
	w.rank = make([]float64, n)
	w.delta = make([]float64, n)
	w.contrib = make([]float64, n)
	w.ndelta = make([]float64, n)
	w.oracle = nil
}

func (w *prDeltaWork) initState() {
	for v := range w.rank {
		w.rank[v] = (1 - graph.PageRankDamping) / float64(w.g.N)
		w.delta[v] = w.rank[v]
	}
}

func (w *prDeltaWork) contribRange(lo, hi int64) {
	for u := lo; u < hi; u++ {
		w.contrib[u] = 0
		if w.g.OutDeg[u] > 0 && math.Abs(w.delta[u]) > prDeltaEps/float64(w.g.N) {
			w.contrib[u] = graph.PageRankDamping * w.delta[u] / float64(w.g.OutDeg[u])
		}
	}
}

func (w *prDeltaWork) gather(v, plo, phi int64) float64 {
	var s float64
	for p := plo; p < phi; p++ {
		s += w.contrib[w.g.InAdj[p]]
	}
	return s
}

func (w *prDeltaWork) Serial() {
	w.initState()
	for it := 0; it < prIters; it++ {
		w.contribRange(0, w.g.N)
		for v := int64(0); v < w.g.N; v++ {
			s := w.gather(v, w.g.InPtr[v], w.g.InPtr[v+1])
			w.ndelta[v] = s
			w.rank[v] += s
		}
		w.delta, w.ndelta = w.ndelta, w.delta
	}
}

func (w *prDeltaWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	w.initState()
	for it := 0; it < prIters; it++ {
		pool.For(cfg.Sched, 0, w.g.N, cfg.Chunk, func(lo, hi int64) { w.contribRange(lo, hi) })
		if !cfg.Nested {
			pool.For(cfg.Sched, 0, w.g.N, cfg.Chunk, func(lo, hi int64) {
				for v := lo; v < hi; v++ {
					s := w.gather(v, w.g.InPtr[v], w.g.InPtr[v+1])
					w.ndelta[v] = s
					w.rank[v] += s
				}
			})
		} else {
			nth := pool.Size()
			pool.For(cfg.Sched, 0, w.g.N, cfg.Chunk, func(lo, hi int64) {
				for v := lo; v < hi; v++ {
					v := v
					s := omp.NestedForReduce(nth, cfg.Sched, w.g.InPtr[v], w.g.InPtr[v+1], cfg.Chunk,
						func(plo, phi int64) float64 { return w.gather(v, plo, phi) })
					w.ndelta[v] = s
					w.rank[v] += s
				}
			})
		}
		w.delta, w.ndelta = w.ndelta, w.delta
	}
}

func (w *prDeltaWork) BindHBC(d *Driver) error {
	contrib := &loopnest.Nest{
		Name: "prd-contrib",
		Root: &loopnest.Loop{
			Name:   "contrib",
			Bounds: func(env any, _ []int64) (int64, int64) { return 0, env.(*prDeltaWork).g.N },
			Body: func(env any, _ []int64, lo, hi int64, _ any) {
				env.(*prDeltaWork).contribRange(lo, hi)
			},
		},
	}
	edges := &loopnest.Loop{
		Name: "edges",
		Bounds: func(env any, idx []int64) (int64, int64) {
			g := env.(*prDeltaWork).g
			return g.InPtr[idx[0]], g.InPtr[idx[0]+1]
		},
		Reduce: loopnest.SumFloat64(),
		Body: func(env any, idx []int64, lo, hi int64, acc any) {
			*acc.(*float64) += env.(*prDeltaWork).gather(idx[0], lo, hi)
		},
	}
	gather := &loopnest.Nest{
		Name: "prd-gather",
		Root: &loopnest.Loop{
			Name:     "verts",
			Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*prDeltaWork).g.N },
			Children: []*loopnest.Loop{edges},
			Post: func(env any, idx []int64, _ any, children []any) {
				p := env.(*prDeltaWork)
				s := *children[0].(*float64)
				p.ndelta[idx[0]] = s
				p.rank[idx[0]] += s
			},
		},
	}
	if err := d.Load("contrib", contrib, w); err != nil {
		return err
	}
	return d.Load("gather", gather, w)
}

func (w *prDeltaWork) RunHBC(d *Driver) {
	w.initState()
	for it := 0; it < prIters; it++ {
		d.Run("contrib")
		d.Run("gather")
		w.delta, w.ndelta = w.ndelta, w.delta
	}
}

func (w *prDeltaWork) Verify() error {
	if w.oracle == nil {
		w.oracle = graph.PageRankDelta(w.g, prIters, prDeltaEps)
	}
	return floatsClose(w.rank, w.oracle, 1e-9, "pr-delta")
}

// --- bfs ----------------------------------------------------------------------------

type bfsWork struct {
	grBase
	level, next []int32
	oracle      []int32
	cur         int32
}

func init() { register("bfs", func() Workload { return &bfsWork{} }) }

func (w *bfsWork) Info() Info { return Info{Name: "bfs", Levels: 1} }

func (w *bfsWork) Prepare(scale float64) {
	w.prepGraph(scale)
	w.level = make([]int32, w.g.N)
	w.next = make([]int32, w.g.N)
	w.oracle = nil
}

func (w *bfsWork) initLevels() {
	for v := range w.level {
		w.level[v] = -1
	}
	w.level[0] = 0
}

// sweep advances unvisited vertices in [lo, hi) whose in-neighbors sit on
// the current frontier, writing the next round's levels (Jacobi: levels of
// the running round are read-only, so concurrent sweeps are race-free and
// deterministic) and returning how many advanced.
func (w *bfsWork) sweep(lo, hi int64) int64 {
	var moved int64
	for v := lo; v < hi; v++ {
		w.next[v] = w.level[v]
		if w.level[v] != -1 {
			continue
		}
		for p := w.g.InPtr[v]; p < w.g.InPtr[v+1]; p++ {
			if w.level[w.g.InAdj[p]] == w.cur {
				w.next[v] = w.cur + 1
				moved++
				break
			}
		}
	}
	return moved
}

func (w *bfsWork) Serial() {
	w.initLevels()
	for w.cur = 0; ; w.cur++ {
		moved := w.sweep(0, w.g.N)
		w.level, w.next = w.next, w.level
		if moved == 0 {
			return
		}
	}
}

func (w *bfsWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	w.initLevels()
	for w.cur = 0; ; w.cur++ {
		moved := pool.ForReduce(cfg.Sched, 0, w.g.N, cfg.Chunk, func(lo, hi int64) float64 {
			return float64(w.sweep(lo, hi))
		})
		w.level, w.next = w.next, w.level
		if moved == 0 {
			return
		}
	}
}

func (w *bfsWork) BindHBC(d *Driver) error {
	nest := &loopnest.Nest{
		Name: "bfs",
		Root: &loopnest.Loop{
			Name:   "verts",
			Bounds: func(env any, _ []int64) (int64, int64) { return 0, env.(*bfsWork).g.N },
			Reduce: loopnest.SumInt64(),
			Body: func(env any, _ []int64, lo, hi int64, acc any) {
				*acc.(*int64) += env.(*bfsWork).sweep(lo, hi)
			},
		},
	}
	return d.Load("sweep", nest, w)
}

func (w *bfsWork) RunHBC(d *Driver) {
	w.initLevels()
	for w.cur = 0; ; w.cur++ {
		moved := *d.Run("sweep").(*int64)
		w.level, w.next = w.next, w.level
		if moved == 0 {
			return
		}
	}
}

func (w *bfsWork) Verify() error {
	if w.oracle == nil {
		w.oracle = graph.BFS(w.g, 0)
	}
	return int32sEqual(w.level, w.oracle, "bfs")
}

// --- connected components --------------------------------------------------------

type ccWork struct {
	grBase
	label, next []int32
	oracle      []int32
}

func init() { register("cc", func() Workload { return &ccWork{} }) }

func (w *ccWork) Info() Info { return Info{Name: "cc", Levels: 2} }

func (w *ccWork) Prepare(scale float64) {
	w.prepGraph(scale)
	w.label = make([]int32, w.g.N)
	w.next = make([]int32, w.g.N)
	w.oracle = nil
}

func (w *ccWork) initLabels() {
	for v := range w.label {
		w.label[v] = int32(v)
	}
}

// minNeighbor returns the minimum label among in-neighbors [plo, phi) of v,
// reading the previous sweep's labels (Jacobi).
func (w *ccWork) minNeighbor(plo, phi int64) int32 {
	m := int32(math.MaxInt32)
	for p := plo; p < phi; p++ {
		if l := w.label[w.g.InAdj[p]]; l < m {
			m = l
		}
	}
	return m
}

func (w *ccWork) Serial() {
	w.initLabels()
	for {
		var changed int64
		for v := int64(0); v < w.g.N; v++ {
			m := w.minNeighbor(w.g.InPtr[v], w.g.InPtr[v+1])
			if m < w.label[v] {
				w.next[v] = m
				changed++
			} else {
				w.next[v] = w.label[v]
			}
		}
		w.label, w.next = w.next, w.label
		if changed == 0 {
			return
		}
	}
}

func (w *ccWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	w.initLabels()
	for {
		changed := pool.ForReduce(cfg.Sched, 0, w.g.N, cfg.Chunk, func(lo, hi int64) float64 {
			var ch int64
			for v := lo; v < hi; v++ {
				m := w.minNeighbor(w.g.InPtr[v], w.g.InPtr[v+1])
				if m < w.label[v] {
					w.next[v] = m
					ch++
				} else {
					w.next[v] = w.label[v]
				}
			}
			return float64(ch)
		})
		w.label, w.next = w.next, w.label
		if changed == 0 {
			return
		}
	}
}

func (w *ccWork) BindHBC(d *Driver) error {
	edges := &loopnest.Loop{
		Name: "edges",
		Bounds: func(env any, idx []int64) (int64, int64) {
			g := env.(*ccWork).g
			return g.InPtr[idx[0]], g.InPtr[idx[0]+1]
		},
		Reduce: minInt32(),
		Body: func(env any, idx []int64, lo, hi int64, acc any) {
			c := env.(*ccWork)
			a := acc.(*int32)
			if m := c.minNeighbor(lo, hi); m < *a {
				*a = m
			}
		},
	}
	nest := &loopnest.Nest{
		Name: "cc",
		Root: &loopnest.Loop{
			Name:     "verts",
			Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*ccWork).g.N },
			Children: []*loopnest.Loop{edges},
			Reduce:   loopnest.SumInt64(),
			Post: func(env any, idx []int64, acc any, children []any) {
				c := env.(*ccWork)
				v := idx[0]
				m := *children[0].(*int32)
				if m < c.label[v] {
					c.next[v] = m
					*acc.(*int64)++
				} else {
					c.next[v] = c.label[v]
				}
			},
		},
	}
	return d.Load("sweep", nest, w)
}

func (w *ccWork) RunHBC(d *Driver) {
	w.initLabels()
	for {
		changed := *d.Run("sweep").(*int64)
		w.label, w.next = w.next, w.label
		if changed == 0 {
			return
		}
	}
}

func (w *ccWork) Verify() error {
	if w.oracle == nil {
		w.oracle = graph.CC(w.g)
	}
	return int32sEqual(w.label, w.oracle, "cc")
}

// --- sssp --------------------------------------------------------------------------

type ssspWork struct {
	grBase
	dist, next []float64
	oracle     []float64
}

func init() { register("sssp", func() Workload { return &ssspWork{} }) }

func (w *ssspWork) Info() Info { return Info{Name: "sssp", Levels: 2} }

func (w *ssspWork) Prepare(scale float64) {
	w.prepGraph(scale)
	w.dist = make([]float64, w.g.N)
	w.next = make([]float64, w.g.N)
	w.oracle = nil
}

func (w *ssspWork) initDist() {
	for v := range w.dist {
		w.dist[v] = graph.Inf
	}
	w.dist[0] = 0
}

// relax returns the best distance to v over in-edges [plo, phi), reading
// the previous round's distances.
func (w *ssspWork) relax(plo, phi int64) float64 {
	best := math.Inf(1)
	for p := plo; p < phi; p++ {
		if du := w.dist[w.g.InAdj[p]]; du != graph.Inf && du+w.g.InW[p] < best {
			best = du + w.g.InW[p]
		}
	}
	return best
}

func (w *ssspWork) Serial() {
	w.initDist()
	for {
		var changed int64
		for v := int64(0); v < w.g.N; v++ {
			b := w.relax(w.g.InPtr[v], w.g.InPtr[v+1])
			if b < w.dist[v] {
				w.next[v] = b
				changed++
			} else {
				w.next[v] = w.dist[v]
			}
		}
		w.dist, w.next = w.next, w.dist
		if changed == 0 {
			return
		}
	}
}

func (w *ssspWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	w.initDist()
	for {
		changed := pool.ForReduce(cfg.Sched, 0, w.g.N, cfg.Chunk, func(lo, hi int64) float64 {
			var ch int64
			for v := lo; v < hi; v++ {
				b := w.relax(w.g.InPtr[v], w.g.InPtr[v+1])
				if b < w.dist[v] {
					w.next[v] = b
					ch++
				} else {
					w.next[v] = w.dist[v]
				}
			}
			return float64(ch)
		})
		w.dist, w.next = w.next, w.dist
		if changed == 0 {
			return
		}
	}
}

func (w *ssspWork) BindHBC(d *Driver) error {
	edges := &loopnest.Loop{
		Name: "edges",
		Bounds: func(env any, idx []int64) (int64, int64) {
			g := env.(*ssspWork).g
			return g.InPtr[idx[0]], g.InPtr[idx[0]+1]
		},
		Reduce: minFloat64(),
		Body: func(env any, idx []int64, lo, hi int64, acc any) {
			s := env.(*ssspWork)
			a := acc.(*float64)
			if b := s.relax(lo, hi); b < *a {
				*a = b
			}
		},
	}
	nest := &loopnest.Nest{
		Name: "sssp",
		Root: &loopnest.Loop{
			Name:     "verts",
			Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*ssspWork).g.N },
			Children: []*loopnest.Loop{edges},
			Reduce:   loopnest.SumInt64(),
			Post: func(env any, idx []int64, acc any, children []any) {
				s := env.(*ssspWork)
				v := idx[0]
				b := *children[0].(*float64)
				if b < s.dist[v] {
					s.next[v] = b
					*acc.(*int64)++
				} else {
					s.next[v] = s.dist[v]
				}
			},
		},
	}
	return d.Load("round", nest, w)
}

func (w *ssspWork) RunHBC(d *Driver) {
	w.initDist()
	for {
		changed := *d.Run("round").(*int64)
		w.dist, w.next = w.next, w.dist
		if changed == 0 {
			return
		}
	}
}

func (w *ssspWork) Verify() error {
	if w.oracle == nil {
		w.oracle = graph.SSSP(w.g, 0)
	}
	// Bellman-Ford fixed points are exact: min/+ has no rounding ambiguity
	// on these inputs, but compare with a hair of tolerance anyway.
	if len(w.dist) != len(w.oracle) {
		return fmt.Errorf("sssp: length mismatch")
	}
	for v := range w.dist {
		if w.dist[v] != w.oracle[v] {
			return fmt.Errorf("sssp: dist[%d] = %g, want %g", v, w.dist[v], w.oracle[v])
		}
	}
	return nil
}

// --- collaborative filtering -----------------------------------------------------

type cfWork struct {
	grBase
	lat, next []float64
	oracle    []float64
}

func init() { register("cf", func() Workload { return &cfWork{} }) }

func (w *cfWork) Info() Info { return Info{Name: "cf", Levels: 2} }

func (w *cfWork) Prepare(scale float64) {
	w.prepGraph(scale)
	w.lat = make([]float64, w.g.N*graph.CFK)
	w.next = make([]float64, len(w.lat))
	w.oracle = nil
}

func (w *cfWork) initLat() {
	for i := range w.lat {
		w.lat[i] = 0.5 + float64(i%7)/14
	}
}

// edgeGrad accumulates the gradient contribution of in-edges [plo, phi) of
// vertex v into grad.
func (w *cfWork) edgeGrad(v, plo, phi int64, grad []float64) {
	base := v * graph.CFK
	for p := plo; p < phi; p++ {
		u := int64(w.g.InAdj[p]) * graph.CFK
		var est float64
		for k := int64(0); k < graph.CFK; k++ {
			est += w.lat[base+k] * w.lat[u+k]
		}
		err := w.g.InW[p] - est
		for k := int64(0); k < graph.CFK; k++ {
			grad[k] += err * w.lat[u+k]
		}
	}
}

func (w *cfWork) apply(v int64, grad []float64) {
	base := v * graph.CFK
	for k := int64(0); k < graph.CFK; k++ {
		w.next[base+k] = w.lat[base+k] + cfStep*grad[k]
	}
}

func (w *cfWork) Serial() {
	w.initLat()
	grad := make([]float64, graph.CFK)
	for it := 0; it < cfIters; it++ {
		for v := int64(0); v < w.g.N; v++ {
			for k := range grad {
				grad[k] = 0
			}
			w.edgeGrad(v, w.g.InPtr[v], w.g.InPtr[v+1], grad)
			w.apply(v, grad)
		}
		w.lat, w.next = w.next, w.lat
	}
}

func (w *cfWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	w.initLat()
	for it := 0; it < cfIters; it++ {
		pool.For(cfg.Sched, 0, w.g.N, cfg.Chunk, func(lo, hi int64) {
			var grad [graph.CFK]float64
			for v := lo; v < hi; v++ {
				for k := range grad {
					grad[k] = 0
				}
				w.edgeGrad(v, w.g.InPtr[v], w.g.InPtr[v+1], grad[:])
				w.apply(v, grad[:])
			}
		})
		w.lat, w.next = w.next, w.lat
	}
}

func (w *cfWork) BindHBC(d *Driver) error {
	edges := &loopnest.Loop{
		Name: "edges",
		Bounds: func(env any, idx []int64) (int64, int64) {
			g := env.(*cfWork).g
			return g.InPtr[idx[0]], g.InPtr[idx[0]+1]
		},
		Reduce: loopnest.VecSumFloat64(graph.CFK),
		Body: func(env any, idx []int64, lo, hi int64, acc any) {
			env.(*cfWork).edgeGrad(idx[0], lo, hi, acc.([]float64))
		},
	}
	nest := &loopnest.Nest{
		Name: "cf",
		Root: &loopnest.Loop{
			Name:     "verts",
			Bounds:   func(env any, _ []int64) (int64, int64) { return 0, env.(*cfWork).g.N },
			Children: []*loopnest.Loop{edges},
			Post: func(env any, idx []int64, _ any, children []any) {
				env.(*cfWork).apply(idx[0], children[0].([]float64))
			},
		},
	}
	return d.Load("sweep", nest, w)
}

func (w *cfWork) RunHBC(d *Driver) {
	w.initLat()
	for it := 0; it < cfIters; it++ {
		d.Run("sweep")
		w.lat, w.next = w.next, w.lat
	}
}

func (w *cfWork) Verify() error {
	if w.oracle == nil {
		w.oracle = graph.CF(w.g, cfIters, cfStep)
	}
	return floatsClose(w.lat, w.oracle, 1e-7, "cf")
}
