// Package workloads implements every benchmark of the paper's evaluation
// (Table 1), each in three variants sharing one kernel definition:
//
//   - Serial: the reference implementation and correctness oracle;
//   - OMP: the OpenMP-style baseline (static/dynamic/guided schedules,
//     outermost-loop-only by default, optionally nested);
//   - HBC: the heartbeat-scheduled version, expressed as DOALL loop nests
//     compiled by internal/core.
//
// The first set is the eight iterative TPAL benchmarks (mandelbrot, three
// spmv inputs, floyd-warshall, kmeans, plus-reduce-array, srad); the second
// set adds mandelbulb, cg, the TACO tensor kernels (ttv, ttm) and the six
// GraphIt graph benchmarks (bfs, cc, pr, pr-delta, sssp, cf). Real datasets
// the paper downloads (cage15, NELL-2, Twitter, LiveJournal) are replaced by
// synthetic generators with the same irregularity structure — see DESIGN.md.
package workloads

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"hbc/internal/core"
	"hbc/internal/loopnest"
	"hbc/internal/omp"
	"hbc/internal/pulse"
	"hbc/internal/sched"
)

// Info describes a benchmark's place in the paper's evaluation.
type Info struct {
	// Name is the paper's benchmark name (e.g. "spmv-arrowhead").
	Name string
	// Regular mirrors Table 1's regularity column.
	Regular bool
	// TPALSet marks the eight iterative benchmarks shared with TPAL
	// (Figs. 6–9).
	TPALSet bool
	// ManualSet marks benchmarks whose OpenMP pragmas are hand-written
	// (Figs. 14–15).
	ManualSet bool
	// Levels is the DOALL nesting depth.
	Levels int
	// Aux marks inputs used only by specific experiments (e.g. the
	// reversed power-law matrix of Fig. 12), excluded from benchmark sets.
	Aux bool
}

// OMPConfig selects the baseline's scheduling decisions — the knobs the
// paper's §6.7 sweeps by hand.
type OMPConfig struct {
	Sched omp.Schedule
	// Chunk is the schedule's chunk size (0 = the schedule's default).
	Chunk int64
	// Nested parallelizes all DOALL loops (omp_set_max_active_levels style)
	// instead of only the outermost — the Fig. 15 experiment.
	Nested bool
}

// Workload is one benchmark bound to its inputs.
type Workload interface {
	Info() Info
	// Prepare (re)builds inputs at the given scale factor; 1.0 is the
	// default laptop-scale size. Must be called before any run.
	Prepare(scale float64)
	// Serial runs the reference implementation into the workload's outputs.
	Serial()
	// OMP runs the OpenMP-style baseline into the outputs.
	OMP(pool *omp.Pool, cfg OMPConfig)
	// BindHBC compiles the workload's loop nests onto the driver.
	BindHBC(d *Driver) error
	// RunHBC executes one invocation using the driver's execs.
	RunHBC(d *Driver)
	// Verify recomputes the oracle and compares the outputs of the most
	// recent run.
	Verify() error
}

// Driver manages the compiled HBC programs of one workload on one team. A
// static Driver (NewStaticDriver) runs the same compiled nests under the
// static scheduler instead — the paper's §6.8 complementary policy.
type Driver struct {
	Team   *sched.Team
	Src    pulse.Source
	Period time.Duration
	Opts   core.Options

	// NestHook, if set, rewrites every nest before compilation. It exists
	// for fault injection (internal/chaos wraps bodies to panic at a chosen
	// iteration) and instrumentation; production drivers leave it nil.
	NestHook func(*loopnest.Nest) *loopnest.Nest

	execs map[string]*core.Exec

	static      bool
	staticProgs map[string]*core.Program
	staticEnvs  map[string]any
	closed      bool
}

// NewDriver creates an HBC driver. The source is shared by all the
// workload's nests and attached exactly once, here.
func NewDriver(team *sched.Team, src pulse.Source, period time.Duration, opts core.Options) *Driver {
	if period <= 0 {
		period = core.DefaultHeartbeat
	}
	src.Attach(team.Size(), period)
	return &Driver{Team: team, Src: src, Period: period, Opts: opts, execs: map[string]*core.Exec{}}
}

// NewStaticDriver creates a driver that executes every loaded nest under
// the static block scheduler: no heartbeat source, no promotions.
func NewStaticDriver(team *sched.Team) *Driver {
	return &Driver{
		Team:        team,
		static:      true,
		execs:       map[string]*core.Exec{},
		staticProgs: map[string]*core.Program{},
		staticEnvs:  map[string]any{},
	}
}

// Load compiles a nest and prepares an Exec for it under the given name.
func (d *Driver) Load(name string, nest *loopnest.Nest, env any) error {
	if d.NestHook != nil {
		nest = d.NestHook(nest)
	}
	p, err := core.Compile(nest, d.Opts)
	if err != nil {
		return fmt.Errorf("workloads: compiling %s: %w", name, err)
	}
	if d.static {
		d.staticProgs[name] = p
		d.staticEnvs[name] = env
		return nil
	}
	d.execs[name] = core.NewExecShared(p, d.Team, d.Src, d.Period, env)
	return nil
}

// Run executes one invocation of the named nest. A failing nest (panicking
// body) surfaces as a panic carrying the typed *core.PanicError, exactly as
// core.Exec.Run does; RunCtx returns it as an error instead.
func (d *Driver) Run(name string) any {
	if d.static {
		p, ok := d.staticProgs[name]
		if !ok {
			panic("workloads: nest not loaded: " + name)
		}
		return p.RunStatic(d.Team, d.staticEnvs[name])
	}
	x, ok := d.execs[name]
	if !ok {
		panic("workloads: nest not loaded: " + name)
	}
	return x.Run()
}

// RunCtx executes one invocation of the named nest under ctx, with the
// failure semantics of core.Exec.RunCtx: cooperative cancellation at poll
// safepoints and loop-body panics contained as *core.PanicError. Not
// supported on static drivers.
func (d *Driver) RunCtx(ctx context.Context, name string) (any, error) {
	if d.static {
		return nil, fmt.Errorf("workloads: RunCtx on a static driver")
	}
	x, ok := d.execs[name]
	if !ok {
		return nil, fmt.Errorf("workloads: nest not loaded: %s", name)
	}
	return x.RunCtx(ctx)
}

// Names lists the loaded nests in sorted order.
func (d *Driver) Names() []string {
	names := make([]string, 0, len(d.execs)+len(d.staticProgs))
	for n := range d.execs {
		names = append(names, n)
	}
	for n := range d.staticProgs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Exec exposes the named nest's executor for statistics.
func (d *Driver) Exec(name string) *core.Exec { return d.execs[name] }

// Execs returns all executors, sorted by name, for aggregate statistics.
func (d *Driver) Execs() []*core.Exec {
	names := make([]string, 0, len(d.execs))
	for n := range d.execs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*core.Exec, len(names))
	for i, n := range names {
		out[i] = d.execs[n]
	}
	return out
}

// Close detaches the shared heartbeat source (a no-op for static drivers,
// which have none). Close is idempotent and safe after a failed run.
func (d *Driver) Close() {
	if d.closed {
		return
	}
	d.closed = true
	if d.Src != nil {
		d.Src.Detach()
	}
}

// Stats sums promotion statistics across the workload's nests.
func (d *Driver) Stats() (promotions int64, byLevel []int64) {
	for _, x := range d.Execs() {
		st := x.Stats()
		promotions += st.Promotions()
		lv := st.ByLevel()
		if len(lv) > len(byLevel) {
			grown := make([]int64, len(lv))
			copy(grown, byLevel)
			byLevel = grown
		}
		for i, v := range lv {
			byLevel[i] += v
		}
	}
	return promotions, byLevel
}

// --- verification helpers ---------------------------------------------------

// floatsClose compares two float slices with a relative-absolute tolerance;
// heartbeat promotions reassociate reductions, so bit-exact equality is not
// the contract for floating-point outputs.
func floatsClose(got, want []float64, tol float64, label string) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		d := math.Abs(got[i] - want[i])
		if d > tol && d > tol*math.Abs(want[i]) {
			return fmt.Errorf("%s: [%d] = %g, want %g (|Δ|=%g)", label, i, got[i], want[i], d)
		}
	}
	return nil
}

func int32sEqual(got, want []int32, label string) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s: [%d] = %d, want %d", label, i, got[i], want[i])
		}
	}
	return nil
}

// scaled applies the scale factor with a floor of 1.
func scaled(base int64, scale float64) int64 {
	v := int64(float64(base) * scale)
	if v < 1 {
		return 1
	}
	return v
}

// --- registry -----------------------------------------------------------------

// New returns a fresh workload by paper name, or an error listing the
// available names.
func New(name string) (Workload, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, Names())
	}
	return ctor(), nil
}

var registry = map[string]func() Workload{}

func register(name string, ctor func() Workload) { registry[name] = ctor }

// Names lists all registered benchmarks in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Irregular lists the irregular benchmarks (the Fig. 4 set).
func Irregular() []string {
	var out []string
	for _, n := range Names() {
		w, _ := New(n)
		if info := w.Info(); !info.Regular && !info.Aux {
			out = append(out, n)
		}
	}
	return out
}

// TPALSet lists the eight iterative TPAL benchmarks (the Fig. 6 set).
func TPALSet() []string {
	var out []string
	for _, n := range Names() {
		w, _ := New(n)
		if w.Info().TPALSet {
			out = append(out, n)
		}
	}
	return out
}

// ManualSet lists benchmarks with hand-written pragmas (Figs. 14–15).
func ManualSet() []string {
	var out []string
	for _, n := range Names() {
		w, _ := New(n)
		if w.Info().ManualSet {
			out = append(out, n)
		}
	}
	return out
}

// RegularSet lists the regular benchmarks (the Fig. 16 set).
func RegularSet() []string {
	var out []string
	for _, n := range Names() {
		w, _ := New(n)
		if info := w.Info(); info.Regular && !info.Aux {
			out = append(out, n)
		}
	}
	return out
}
