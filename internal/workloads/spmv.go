package workloads

import (
	"hbc/internal/loopnest"
	"hbc/internal/matrix"
	"hbc/internal/omp"
)

// spmvWork is the paper's running example: sparse-matrix by dense-vector
// product over one of the synthetic inputs (arrowhead, power-law, reversed
// power-law, uniform random). The DOALL nest is the two-level structure of
// Fig. 1: a row loop whose tail work writes out[i], and a column loop with
// a scalar sum reduction.
type spmvWork struct {
	info Info
	gen  func(scale float64) *matrix.CSR

	m      *matrix.CSR
	in     []float64
	out    []float64
	oracle []float64
}

func init() {
	register("spmv-arrowhead", func() Workload {
		return &spmvWork{
			info: Info{Name: "spmv-arrowhead", TPALSet: true, ManualSet: true, Levels: 2},
			gen: func(s float64) *matrix.CSR {
				return matrix.Arrowhead(scaled(300_000, s))
			},
		}
	})
	register("spmv-powerlaw", func() Workload {
		return &spmvWork{
			info: Info{Name: "spmv-powerlaw", TPALSet: true, ManualSet: true, Levels: 2},
			gen: func(s float64) *matrix.CSR {
				n := scaled(40_000, s)
				return matrix.PowerLaw(n, n/2, 0.8, 42)
			},
		}
	})
	register("spmv-powerlaw-reverse", func() Workload {
		return &spmvWork{
			// Fig. 12 only; not part of the paper's benchmark tables.
			info: Info{Name: "spmv-powerlaw-reverse", Levels: 2, Aux: true},
			gen: func(s float64) *matrix.CSR {
				n := scaled(40_000, s)
				return matrix.PowerLawReverse(n, n/2, 0.8, 42)
			},
		}
	})
	register("spmv-random", func() Workload {
		return &spmvWork{
			info: Info{Name: "spmv-random", Regular: true, TPALSet: true, ManualSet: true, Levels: 2},
			gen: func(s float64) *matrix.CSR {
				return matrix.Random(scaled(80_000, s), 12, 7)
			},
		}
	})
}

func (w *spmvWork) Info() Info { return w.info }

func (w *spmvWork) Prepare(scale float64) {
	w.m = w.gen(scale)
	w.in = make([]float64, w.m.Cols)
	for i := range w.in {
		w.in[i] = 1 + float64(i%13)/13
	}
	w.out = make([]float64, w.m.Rows)
	w.oracle = nil
}

func (w *spmvWork) Serial() { w.m.SpMV(w.in, w.out) }

func (w *spmvWork) OMP(pool *omp.Pool, cfg OMPConfig) {
	m, in, out := w.m, w.in, w.out
	if !cfg.Nested {
		// The authors' recommended form: parallelize the outermost loop only.
		pool.For(cfg.Sched, 0, m.Rows, cfg.Chunk, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				var s float64
				for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
					s += m.Val[j] * in[m.ColInd[j]]
				}
				out[i] = s
			}
		})
		return
	}
	// All-DOALL form (Fig. 15): the column loop becomes its own nested
	// parallel region with a reduction, once per row.
	n := pool.Size()
	pool.For(cfg.Sched, 0, m.Rows, cfg.Chunk, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			out[i] = omp.NestedForReduce(n, cfg.Sched, m.RowPtr[i], m.RowPtr[i+1], cfg.Chunk,
				func(jlo, jhi int64) float64 {
					var s float64
					for j := jlo; j < jhi; j++ {
						s += m.Val[j] * in[m.ColInd[j]]
					}
					return s
				})
		}
	})
}

// spmvNest builds the Fig. 1 loop nest over a CSR environment.
func spmvNest(name string) *loopnest.Nest {
	col := &loopnest.Loop{
		Name: "col",
		Bounds: func(env any, idx []int64) (int64, int64) {
			m := env.(*spmvWork).m
			return m.RowPtr[idx[0]], m.RowPtr[idx[0]+1]
		},
		Reduce: loopnest.SumFloat64(),
		Body: func(env any, idx []int64, lo, hi int64, acc any) {
			w := env.(*spmvWork)
			m := w.m
			s := acc.(*float64)
			for j := lo; j < hi; j++ {
				*s += m.Val[j] * w.in[m.ColInd[j]]
			}
		},
	}
	row := &loopnest.Loop{
		Name: "row",
		Bounds: func(env any, _ []int64) (int64, int64) {
			return 0, env.(*spmvWork).m.Rows
		},
		Children: []*loopnest.Loop{col},
		Post: func(env any, idx []int64, _ any, children []any) {
			env.(*spmvWork).out[idx[0]] = *children[0].(*float64)
		},
	}
	return &loopnest.Nest{Name: name, Root: row}
}

func (w *spmvWork) BindHBC(d *Driver) error {
	return d.Load("spmv", spmvNest(w.info.Name), w)
}

func (w *spmvWork) RunHBC(d *Driver) { d.Run("spmv") }

func (w *spmvWork) Verify() error {
	if w.oracle == nil {
		w.oracle = make([]float64, w.m.Rows)
		w.m.SpMV(w.in, w.oracle)
	}
	return floatsClose(w.out, w.oracle, 1e-9, w.info.Name)
}

// Rows exposes the matrix row count for the Fig. 12 trace bucketing.
func (w *spmvWork) Rows() int64 { return w.m.Rows }

// RowNNZ exposes row i's nonzero count for the Fig. 12 trace bucketing.
func (w *spmvWork) RowNNZ(i int64) int64 { return w.m.RowNNZ(i) }
