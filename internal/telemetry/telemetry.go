// Package telemetry is the runtime's unified observability layer: a
// lock-light per-worker ring-buffer tracer for scheduling events and a
// metrics registry that snapshots the runtime's counters into standard
// exposition formats.
//
// The paper's entire evaluation (Figs. 6-11) is about observing the
// heartbeat runtime — promotion counts, polling overhead, chunk-size
// adaptation over time — and a loop-scheduling runtime becomes a usable
// production component only once those scheduling decisions are exportable
// as time-series. This package is that layer:
//
//   - Tracer records promotions, steals, parks/wakes, heartbeat deliveries,
//     watchdog failovers, and Adaptive Chunking retunes into one bounded
//     ring buffer per worker. Each lane is written only by its owning worker
//     under a per-lane mutex that is uncontended except while a snapshot is
//     being taken, so recording an event costs a lock/unlock pair on a warm,
//     core-local line — cheap enough to leave on during measurement runs. A
//     full ring overwrites its oldest events and counts them as dropped, so
//     a truncated trace is always distinguishable from a complete one.
//
//   - Snapshot freezes the lanes and exports them as Chrome trace_event
//     JSON (one lane per worker, loadable in Perfetto or chrome://tracing)
//     or as a compact text timeline.
//
//   - Registry collects named metric groups — scheduler counters, pulse
//     delivery statistics, per-run promotion counts, live AC chunk sizes —
//     and serves them in Prometheus text exposition format and as expvar
//     JSON, from an opt-in HTTP endpoint.
//
// A nil *Tracer is a valid, disabled tracer: every method is a no-op, so
// call sites in the scheduler and runtime gate tracing on a single pointer
// test and the telemetry-off fast path stays allocation-free (enforced by
// cmd/benchgate in CI).
package telemetry

import (
	"sync"
	"time"
)

// Kind enumerates the traced event taxonomy.
type Kind uint8

const (
	// KindPromotion is one heartbeat promotion: A/B are the packed LoopIDs
	// of the loop that received the heartbeat (Li) and the loop that was
	// split (Lj); C, D, E are the split bounds lo, mid, hi. A leftover task
	// was forked iff A != B (an ancestor was split).
	KindPromotion Kind = iota
	// KindSteal is a successful steal by this worker: A is the victim
	// worker, B the nanoseconds the steal spent searching, C the steal
	// distance in the team's topology (0 = same leaf group, 1 = sibling
	// group, and so on; always 0 on a flat team).
	KindSteal
	// KindPark marks this worker giving up spinning and blocking.
	KindPark
	// KindUnpark marks the end of a park: A is the reason (see Unpark*).
	KindUnpark
	// KindBeat is a heartbeat detection at a poll site: A is the number of
	// beats observed (k>1 means k-1 were missed), B the polling leaf
	// ordinal, or -1 at an interior latch.
	KindBeat
	// KindFailover is a watchdog failover from a silent heartbeat source to
	// fallback timer polling: A is the failover ordinal (1 for the first).
	KindFailover
	// KindRetune is an Adaptive Chunking rescale: A is the leaf ordinal, B
	// the new chunk size, C the previous chunk size, D the window's minimum
	// observed poll count that drove the rescale.
	KindRetune

	numKinds = int(KindRetune) + 1
)

// Unpark reasons (Event.A of KindUnpark).
const (
	UnparkWake  = 0 // an explicit wake signal from a spawner
	UnparkInbox = 1 // an external submission arrived
	UnparkTimer = 2 // the fallback timer fired
)

var kindNames = [numKinds]string{
	"promotion", "steal", "park", "unpark", "beat", "failover", "retune",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Kinds returns every event kind in declaration order, for enumeration by
// summaries and tests.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Event is one traced occurrence. The A..E payload fields are
// kind-specific; see the Kind constants for their meaning.
type Event struct {
	// When is the time since the Tracer was created.
	When time.Duration
	// Kind identifies the event type.
	Kind Kind
	// Worker is the lane (worker ID) the event was recorded on.
	Worker int32
	// A..E are the kind-specific payload values.
	A, B, C, D, E int64
}

// PackLoopID encodes a (level, index) loop ID into one payload field.
func PackLoopID(level, index int) int64 {
	return int64(level)<<32 | int64(uint32(index))
}

// UnpackLoopID decodes a payload field written by PackLoopID.
func UnpackLoopID(v int64) (level, index int) {
	return int(v >> 32), int(uint32(v))
}

// DefaultEventsPerWorker is the default ring capacity of each worker lane.
// At 64 bytes per event this is 256 KiB per worker — roomy enough for the
// full promotion history of a multi-second run at the paper's 100µs
// heartbeat, bounded enough to leave on in production.
const DefaultEventsPerWorker = 1 << 12

// lane is one worker's ring buffer. Only the owning worker writes it; the
// mutex is uncontended except while Snapshot copies the lane out. Leading
// and trailing pads keep the hot head fields of adjacent lanes (the slice
// is contiguous) off each other's cache lines.
//
//hbc:padded
type lane struct {
	_   [64]byte
	mu  sync.Mutex
	buf []Event
	// head is the next write index; n the live event count (n == len(buf)
	// once the ring has wrapped).
	head, n int
	// total counts events ever emitted on the lane; dropped counts events
	// overwritten after the ring wrapped. total - dropped == n.
	total, dropped uint64
	_              [40]byte
}

// Tracer records scheduling events into per-worker ring buffers. Create
// one with NewTracer; a nil *Tracer is a disabled tracer whose methods are
// all no-ops.
type Tracer struct {
	start time.Time
	lanes []lane
	// now returns the time since start; replaceable by tests that need
	// deterministic timestamps.
	now func() time.Duration
}

// NewTracer creates a tracer with one lane per worker, each holding up to
// perWorker events (<= 0 selects DefaultEventsPerWorker).
func NewTracer(workers, perWorker int) *Tracer {
	if workers < 1 {
		workers = 1
	}
	if perWorker <= 0 {
		perWorker = DefaultEventsPerWorker
	}
	t := &Tracer{start: time.Now(), lanes: make([]lane, workers)}
	t.now = func() time.Duration { return time.Since(t.start) }
	for i := range t.lanes {
		t.lanes[i].buf = make([]Event, perWorker)
	}
	return t
}

// Workers returns the number of lanes, or 0 for a nil tracer.
func (t *Tracer) Workers() int {
	if t == nil {
		return 0
	}
	return len(t.lanes)
}

// Emit records one event on worker w's lane. A nil tracer, or a worker
// outside the lane range (an external goroutine), drops the event. Emit
// never allocates: the ring is preallocated and a full lane overwrites its
// oldest event, counting the loss.
func (t *Tracer) Emit(w int, k Kind, a, b, c, d, e int64) {
	if t == nil || w < 0 || w >= len(t.lanes) {
		return
	}
	when := t.now()
	l := &t.lanes[w]
	l.mu.Lock()
	l.buf[l.head] = Event{When: when, Kind: k, Worker: int32(w), A: a, B: b, C: c, D: d, E: e}
	l.head++
	if l.head == len(l.buf) {
		l.head = 0
	}
	if l.n < len(l.buf) {
		l.n++
	} else {
		l.dropped++
	}
	l.total++
	l.mu.Unlock()
}

// Totals returns the number of events ever emitted and the number
// overwritten by ring wraps, summed across lanes, without copying events —
// the cheap counters the metrics registry snapshots.
func (t *Tracer) Totals() (total, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	for i := range t.lanes {
		l := &t.lanes[i]
		l.mu.Lock()
		total += l.total
		dropped += l.dropped
		l.mu.Unlock()
	}
	return total, dropped
}

// LaneSnapshot is the frozen contents of one worker's ring.
type LaneSnapshot struct {
	// Worker is the lane's worker ID.
	Worker int
	// Events holds the retained events, oldest first.
	Events []Event
	// Total counts events ever emitted on the lane.
	Total uint64
	// Dropped counts events overwritten after the ring filled. Events holds
	// the newest Total - Dropped events.
	Dropped uint64
}

// Snapshot is a point-in-time copy of every lane.
type Snapshot struct {
	// Taken is the tracer-relative time the snapshot was taken.
	Taken time.Duration
	// Lanes holds one entry per worker, in worker order.
	Lanes []LaneSnapshot
}

// Snapshot copies every lane out under its lock. Safe to call while
// workers are emitting; events recorded after a lane is copied are not
// included. Returns an empty snapshot for a nil tracer.
func (t *Tracer) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	s := Snapshot{Taken: t.now(), Lanes: make([]LaneSnapshot, len(t.lanes))}
	for i := range t.lanes {
		l := &t.lanes[i]
		l.mu.Lock()
		ev := make([]Event, l.n)
		if l.n == len(l.buf) {
			// Wrapped: oldest event sits at head.
			n := copy(ev, l.buf[l.head:])
			copy(ev[n:], l.buf[:l.head])
		} else {
			copy(ev, l.buf[:l.n])
		}
		s.Lanes[i] = LaneSnapshot{Worker: i, Events: ev, Total: l.total, Dropped: l.dropped}
		l.mu.Unlock()
	}
	return s
}

// Truncated reports whether any lane overwrote events (the ring wrapped),
// so a consumer can tell a partial trace from a complete one.
func (s Snapshot) Truncated() bool { return s.Dropped() > 0 }

// Dropped returns the total number of overwritten events across lanes.
func (s Snapshot) Dropped() uint64 {
	var n uint64
	for _, l := range s.Lanes {
		n += l.Dropped
	}
	return n
}

// Total returns the total number of events ever emitted across lanes.
func (s Snapshot) Total() uint64 {
	var n uint64
	for _, l := range s.Lanes {
		n += l.Total
	}
	return n
}

// CountByKind tallies the retained events of every lane by kind.
func (s Snapshot) CountByKind() map[Kind]int {
	m := make(map[Kind]int, numKinds)
	for _, l := range s.Lanes {
		for _, e := range l.Events {
			m[e.Kind]++
		}
	}
	return m
}

// Telemetry bundles the tracer and the metrics registry that together form
// the runtime's telemetry surface (see hbc.WithTelemetry).
type Telemetry struct {
	Tracer   *Tracer
	Registry *Registry
}

// New creates a Telemetry with a tracer of the given shape and an empty
// registry. perWorker <= 0 selects DefaultEventsPerWorker.
func New(workers, perWorker int) *Telemetry {
	return &Telemetry{Tracer: NewTracer(workers, perWorker), Registry: NewRegistry()}
}
