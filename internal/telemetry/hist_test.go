package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow ones: p50 must sit in a fast bucket,
	// p99 in a slow one.
	for i := 0; i < 90; i++ {
		h.Observe(200 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if p50 := h.Quantile(0.50); p50 > time.Millisecond {
		t.Errorf("p50 = %v, want <= 1ms", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 50*time.Millisecond {
		t.Errorf("p99 = %v, want >= 50ms", p99)
	}
	if mean := h.Mean(); mean < 200*time.Microsecond || mean > 20*time.Millisecond {
		t.Errorf("mean = %v, out of plausible range", mean)
	}
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-time.Second) // clamped to 0
	h.Observe(time.Hour)    // overflow bucket
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if q := h.Quantile(1.0); q != BucketBound(histBuckets-1) {
		t.Errorf("max quantile = %v, want top bucket bound %v", q, BucketBound(histBuckets-1))
	}
}

func TestHistogramBucketIndexMonotone(t *testing.T) {
	prev := -1
	for d := 10 * time.Microsecond; d < 2*time.Minute; d *= 3 {
		i := bucketIndex(d)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %v: %d < %d", d, i, prev)
		}
		if d > BucketBound(i) && i != histBuckets-1 {
			t.Fatalf("bucketIndex(%v) = %d but bound %v < d", d, i, BucketBound(i))
		}
		prev = i
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(g+1) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*each {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*each)
	}
	var emitted int
	h.Collect("lat", func(metric string, v float64) { emitted++ })
	if emitted != 5 {
		t.Fatalf("Collect emitted %d metrics, want 5", emitted)
	}
}
