package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-shape latency histogram safe for concurrent Observe:
// exponential bucket bounds from histMin doubling up to histMax, each bucket
// one atomic counter. It exists for the serving layer's per-tenant latency
// metrics, where a full quantile sketch would be overkill: quantile
// estimates are read from bucket upper bounds, so they are exact to within
// one bucket width (a factor of two), which is the resolution a load-shedding
// decision or a dashboard needs.
//
// The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Int64
}

const (
	// histMin is the upper bound of the first bucket; durations below it are
	// indistinguishable from it.
	histMin = 100 * time.Microsecond
	// histBuckets doubles histMin 20 times: the last finite bound is ~52s,
	// with one overflow bucket above it.
	histBuckets = 21
)

// bucketIndex maps a duration onto its bucket.
func bucketIndex(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	i := int(math.Ceil(math.Log2(float64(d) / float64(histMin))))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketBound returns the upper bound of bucket i; the final bucket is
// unbounded and reports the largest finite bound.
func BucketBound(i int) time.Duration {
	if i >= histBuckets-1 {
		i = histBuckets - 1
	}
	return histMin << uint(i)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean observed duration, 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sumNS.Load()) / n)
}

// Quantile returns an upper-bound estimate of the q'th quantile (0 < q <= 1):
// the bound of the bucket holding the q'th observation. Concurrent Observe
// calls may skew the estimate by the in-flight observations; that is fine
// for monitoring reads.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}

// Collect emits the histogram's summary metrics through emit, under the
// given metric-name prefix: <prefix>_count, <prefix>_mean_ms, and
// <prefix>_p{50,90,99}_ms — the shape the registry's Prometheus and expvar
// endpoints expose per tenant.
func (h *Histogram) Collect(prefix string, emit func(metric string, value float64)) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	emit(prefix+"_count", float64(h.Count()))
	emit(prefix+"_mean_ms", ms(h.Mean()))
	emit(prefix+"_p50_ms", ms(h.Quantile(0.50)))
	emit(prefix+"_p90_ms", ms(h.Quantile(0.90)))
	emit(prefix+"_p99_ms", ms(h.Quantile(0.99)))
}
