package telemetry

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, KindSteal, 1, 2, 3, 4, 5) // must not panic
	if tr.Workers() != 0 {
		t.Fatal("nil tracer has workers")
	}
	s := tr.Snapshot()
	if len(s.Lanes) != 0 || s.Truncated() {
		t.Fatal("nil tracer produced a non-empty snapshot")
	}
	if total, dropped := tr.Totals(); total != 0 || dropped != 0 {
		t.Fatal("nil tracer has totals")
	}
}

func TestEmitOutOfRangeDropped(t *testing.T) {
	tr := NewTracer(2, 4)
	tr.Emit(-1, KindPark, 0, 0, 0, 0, 0)
	tr.Emit(2, KindPark, 0, 0, 0, 0, 0)
	if total, _ := tr.Totals(); total != 0 {
		t.Fatalf("out-of-range emits recorded: total=%d", total)
	}
}

// TestRingWrapCountsDrops pins the truncation contract: a full ring keeps
// the newest events and counts the overwritten ones, so a truncated trace
// is distinguishable from a complete one.
func TestRingWrapCountsDrops(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(0, KindBeat, int64(i), 0, 0, 0, 0)
	}
	s := tr.Snapshot()
	l := s.Lanes[0]
	if l.Total != 10 || l.Dropped != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", l.Total, l.Dropped)
	}
	if len(l.Events) != 4 {
		t.Fatalf("kept %d events, want 4", len(l.Events))
	}
	for i, e := range l.Events {
		if want := int64(6 + i); e.A != want {
			t.Fatalf("event %d has A=%d, want %d (newest-4 retained, oldest first)", i, e.A, want)
		}
	}
	if !s.Truncated() || s.Dropped() != 6 {
		t.Fatalf("snapshot truncation: truncated=%v dropped=%d", s.Truncated(), s.Dropped())
	}
}

func TestPackLoopIDRoundTrip(t *testing.T) {
	for _, c := range [][2]int{{0, 0}, {1, 7}, {3, 1 << 20}, {100, 0}} {
		l, i := UnpackLoopID(PackLoopID(c[0], c[1]))
		if l != c[0] || i != c[1] {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", c[0], c[1], l, i)
		}
	}
}

// fixedClock makes event timestamps deterministic for golden tests.
func fixedClock(tr *Tracer) {
	var n int64
	tr.now = func() time.Duration {
		n++
		return time.Duration(n) * 100 * time.Microsecond
	}
}

// buildSnapshot emits one event of every kind across two lanes.
func buildSnapshot() Snapshot {
	tr := NewTracer(2, 8)
	fixedClock(tr)
	tr.Emit(0, KindBeat, 1, 0, 0, 0, 0)
	tr.Emit(0, KindPromotion, PackLoopID(1, 0), PackLoopID(0, 0), 10, 15, 20)
	tr.Emit(0, KindRetune, 0, 8, 4, 8, 0)
	tr.Emit(1, KindSteal, 0, 1500, 0, 0, 0)
	tr.Emit(1, KindPark, 0, 0, 0, 0, 0)
	tr.Emit(1, KindUnpark, UnparkWake, 0, 0, 0, 0)
	tr.Emit(1, KindFailover, 1, 0, 0, 0, 0)
	return tr.Snapshot()
}

func TestEmitPayloadSlots(t *testing.T) {
	// KindPromotion uses all five payload slots; check they survive export.
	s := buildSnapshot()
	var promo *Event
	for i, e := range s.Lanes[0].Events {
		if e.Kind == KindPromotion {
			promo = &s.Lanes[0].Events[i]
		}
	}
	if promo == nil {
		t.Fatal("no promotion event")
	}
	if promo.C != 10 || promo.D != 15 || promo.E != 20 {
		t.Fatalf("promotion payload = %+v", promo)
	}
}

// TestChromeTraceValid checks the exported trace against the Chrome
// trace_event contract the downstream viewers rely on: it parses as JSON,
// every lane's timestamps are monotonic, and the pid/tid lanes match the
// worker IDs.
func TestChromeTraceValid(t *testing.T) {
	s := buildSnapshot()
	raw, err := s.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Truncated bool   `json:"hbcTruncated"`
		Dropped   uint64 `json:"hbcDropped"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("trace does not parse as JSON: %v", err)
	}
	lastTs := map[int]float64{}
	lanes := map[int]bool{}
	kinds := map[string]int{}
	for _, e := range parsed.TraceEvents {
		if e.Pid != chromePid {
			t.Fatalf("event %q has pid %d, want %d", e.Name, e.Pid, chromePid)
		}
		if e.Ph == "M" {
			continue
		}
		lanes[e.Tid] = true
		kinds[e.Name]++
		if e.Ts < lastTs[e.Tid] {
			t.Fatalf("lane %d: ts %v < previous %v (not monotonic)", e.Tid, e.Ts, lastTs[e.Tid])
		}
		lastTs[e.Tid] = e.Ts
	}
	for w := 0; w < 2; w++ {
		if !lanes[w] {
			t.Fatalf("no lane for worker %d", w)
		}
	}
	if kinds["promotion"] < 1 {
		t.Fatal("no promotion event in trace")
	}
	if parsed.Truncated || parsed.Dropped != 0 {
		t.Fatal("untruncated snapshot exported as truncated")
	}
}

// TestChromeTraceGolden locks the exact export format so viewer-visible
// changes are deliberate. Regenerate with -update.
func TestChromeTraceGolden(t *testing.T) {
	s := buildSnapshot()
	raw, err := s.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to create it)", err)
	}
	if string(raw) != string(want) {
		t.Fatalf("chrome trace drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, raw, want)
	}
}

func TestTimelineEdges(t *testing.T) {
	s := buildSnapshot()
	out := s.Timeline(0) // bin <= 0 edge: falls back to 1ms
	if !strings.Contains(out, "1ms bins") {
		t.Fatalf("Timeline(0) did not fall back to 1ms bins:\n%s", out)
	}
	if !strings.Contains(out, "promotion=1") {
		t.Fatalf("Timeline lost the promotion:\n%s", out)
	}
	if out := (Snapshot{}).Timeline(-1); !strings.Contains(out, "no events") {
		t.Fatalf("empty timeline = %q", out)
	}

	// A truncated snapshot must announce it.
	tr := NewTracer(1, 2)
	for i := 0; i < 5; i++ {
		tr.Emit(0, KindPark, 0, 0, 0, 0, 0)
	}
	if out := tr.Snapshot().Timeline(time.Millisecond); !strings.Contains(out, "TRUNCATED: 3") {
		t.Fatalf("truncated timeline did not announce drops:\n%s", out)
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Register("sched", func(emit func(string, float64)) {
		emit("steals_total", 42)
		emit("lag_mean_ns", 1.5)
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE hbc_sched_steals_total counter",
		"hbc_sched_steals_total 42",
		"# TYPE hbc_sched_lag_mean_ns gauge",
		"hbc_sched_lag_mean_ns 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySanitizesAndDedups(t *testing.T) {
	r := NewRegistry()
	n1 := r.Register("run spmv", func(emit func(string, float64)) { emit("x", 1) })
	n2 := r.Register("run spmv", func(emit func(string, float64)) { emit("x", 2) })
	if n1 != "run_spmv" || n2 != "run_spmv_2" {
		t.Fatalf("registered names %q, %q", n1, n2)
	}
	samples := r.Gather()
	if len(samples) != 2 {
		t.Fatalf("gathered %d samples, want 2", len(samples))
	}
	if samples[0].Name != "hbc_run_spmv_x" || samples[1].Name != "hbc_run_spmv_2_x" {
		t.Fatalf("sample names %q, %q", samples[0].Name, samples[1].Name)
	}
}

func TestRegistryExpvarJSON(t *testing.T) {
	r := NewRegistry()
	r.Register("g", func(emit func(string, float64)) { emit("v", 7) })
	var m map[string]float64
	if err := json.Unmarshal([]byte(r.ExpvarJSON()), &m); err != nil {
		t.Fatal(err)
	}
	if m["hbc_g_v"] != 7 {
		t.Fatalf("expvar JSON = %v", m)
	}
	// PublishExpvar must be idempotent across registries sharing a name.
	r.PublishExpvar("hbc_test_metrics")
	r2 := NewRegistry()
	r2.Register("g", func(emit func(string, float64)) { emit("v", 8) })
	r2.PublishExpvar("hbc_test_metrics") // must not panic, replaces r
}

func TestRegistryServe(t *testing.T) {
	r := NewRegistry()
	r.Register("srv", func(emit func(string, float64)) { emit("up", 1) })
	ms, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	for _, c := range []struct{ path, want string }{
		{"/metrics", "hbc_srv_up 1"},
		{"/vars", `"hbc_srv_up": 1`},
	} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ms.Addr(), c.path))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", c.path, resp.StatusCode)
		}
		if !strings.Contains(string(body), c.want) {
			t.Fatalf("GET %s: body missing %q:\n%s", c.path, c.want, body)
		}
	}
}

// TestConcurrentEmitSnapshot exercises the lock-light lanes under the race
// detector: one emitter per lane with concurrent snapshots and totals.
func TestConcurrentEmitSnapshot(t *testing.T) {
	const workers = 4
	tr := NewTracer(workers, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.Emit(w, Kind(i%numKinds), int64(i), 0, 0, 0, 0)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		s := tr.Snapshot()
		for _, l := range s.Lanes {
			if uint64(len(l.Events)) != l.Total-l.Dropped {
				t.Errorf("lane %d: %d events, total %d, dropped %d",
					l.Worker, len(l.Events), l.Total, l.Dropped)
			}
			for j := 1; j < len(l.Events); j++ {
				if l.Events[j].When < l.Events[j-1].When {
					t.Errorf("lane %d: events out of order", l.Worker)
				}
			}
		}
		tr.Totals()
	}
	close(stop)
	wg.Wait()
}
