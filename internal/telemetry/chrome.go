package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Chrome trace_event export. The snapshot becomes one JSON object in the
// Trace Event Format understood by chrome://tracing and Perfetto: a single
// process ("hbc runtime"), one thread lane per worker (tid == worker ID),
// with every runtime event as a thread-scoped instant event carrying its
// payload in args. Instant events — rather than begin/end pairs — keep the
// export robust to ring truncation: a dropped park event can never leave an
// unmatched span open.

// chromePid is the process ID used for all lanes; the runtime is one
// process, and the worker ID is the thread lane.
const chromePid = 1

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	// Truncated and Dropped surface ring overwrites in the file itself, so
	// a truncated trace is self-describing (the bugfix contract: truncation
	// must never be silent).
	Truncated bool   `json:"hbcTruncated"`
	Dropped   uint64 `json:"hbcDropped"`
}

// chromeArgs renders an event's payload as named args per kind.
func chromeArgs(e Event) map[string]any {
	switch e.Kind {
	case KindPromotion:
		atL, atI := UnpackLoopID(e.A)
		spL, spI := UnpackLoopID(e.B)
		return map[string]any{
			"at":       fmt.Sprintf("(%d,%d)", atL, atI),
			"split":    fmt.Sprintf("(%d,%d)", spL, spI),
			"lo":       e.C,
			"mid":      e.D,
			"hi":       e.E,
			"leftover": e.A != e.B,
		}
	case KindSteal:
		return map[string]any{"victim": e.A, "search_ns": e.B, "distance": e.C}
	case KindUnpark:
		reason := "timer"
		switch e.A {
		case UnparkWake:
			reason = "wake"
		case UnparkInbox:
			reason = "inbox"
		}
		return map[string]any{"reason": reason}
	case KindBeat:
		return map[string]any{"beats": e.A, "leaf": e.B}
	case KindFailover:
		return map[string]any{"n": e.A}
	case KindRetune:
		return map[string]any{"leaf": e.A, "chunk": e.B, "prev": e.C, "min_polls": e.D}
	default:
		return nil
	}
}

// ChromeTrace renders the snapshot as Chrome trace_event JSON: metadata
// naming the process and one thread per worker, followed by every lane's
// events in time order within the lane. Timestamps are microseconds since
// the tracer was created and are monotonically non-decreasing per lane.
func (s Snapshot) ChromeTrace() ([]byte, error) {
	t := chromeTrace{
		DisplayTimeUnit: "ms",
		Truncated:       s.Truncated(),
		Dropped:         s.Dropped(),
	}
	t.TraceEvents = append(t.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid,
		Args: map[string]any{"name": "hbc runtime"},
	})
	for _, l := range s.Lanes {
		t.TraceEvents = append(t.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: l.Worker,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", l.Worker)},
		})
	}
	for _, l := range s.Lanes {
		for _, e := range l.Events {
			t.TraceEvents = append(t.TraceEvents, chromeEvent{
				Name: e.Kind.String(),
				Ph:   "i",
				S:    "t",
				Ts:   float64(e.When) / float64(time.Microsecond),
				Pid:  chromePid,
				Tid:  l.Worker,
				Args: chromeArgs(e),
			})
		}
	}
	return json.MarshalIndent(t, "", " ")
}

// Timeline renders the snapshot as a compact text timeline: per-bin event
// counts broken down by kind, merged across lanes, plus the truncation
// status. bin <= 0 selects one millisecond.
func (s Snapshot) Timeline(bin time.Duration) string {
	if bin <= 0 {
		bin = time.Millisecond
	}
	var all []Event
	for _, l := range s.Lanes {
		all = append(all, l.Events...)
	}
	var sb strings.Builder
	if len(all) == 0 {
		sb.WriteString("(no events recorded)\n")
		return sb.String()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].When < all[j].When })
	last := all[len(all)-1].When
	bins := int(last/bin) + 1
	counts := make([]map[Kind]int, bins)
	totals := make([]int, bins)
	for _, e := range all {
		b := int(e.When / bin)
		if counts[b] == nil {
			counts[b] = make(map[Kind]int)
		}
		counts[b][e.Kind]++
		totals[b]++
	}
	maxTotal := 0
	for _, t := range totals {
		if t > maxTotal {
			maxTotal = t
		}
	}
	fmt.Fprintf(&sb, "events over time (%v bins, %d events, %d workers):\n",
		bin, len(all), len(s.Lanes))
	for b := 0; b < bins; b++ {
		bar := ""
		if maxTotal > 0 {
			bar = strings.Repeat("█", totals[b]*32/maxTotal)
		}
		var parts []string
		for _, k := range Kinds() {
			if c := counts[b][k]; c > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", k, c))
			}
		}
		fmt.Fprintf(&sb, "%10v |%-32s %d  %s\n",
			(time.Duration(b) * bin).Round(time.Microsecond), bar, totals[b],
			strings.Join(parts, " "))
	}
	if d := s.Dropped(); d > 0 {
		fmt.Fprintf(&sb, "TRUNCATED: %d events overwritten (grow the ring to keep them)\n", d)
	}
	return sb.String()
}
