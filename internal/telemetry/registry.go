package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Registry collects named metric groups and serves point-in-time snapshots
// of them in Prometheus text exposition format and as expvar-style JSON.
// Collectors are pull-based: registering costs nothing at runtime; the
// sources (scheduler counters, pulse statistics, run statistics, AC chunk
// sizes) are only read when a snapshot is gathered, so observation pays
// the aggregation cost, never the hot path.
type Registry struct {
	mu     sync.Mutex
	groups []group
	taken  map[string]bool
}

// A Collector emits the current value of each metric in its group. Metric
// names are suffixes: the full exposition name is hbc_<group>_<metric>.
type Collector func(emit func(metric string, value float64))

type group struct {
	name    string
	collect Collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{taken: map[string]bool{}}
}

// Register adds a metric group. If the name is already registered — e.g.
// the same program loaded twice on one team — a numeric suffix is appended
// so both groups stay visible. The returned name is the one registered.
func (r *Registry) Register(name string, c Collector) string {
	name = sanitize(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	final := name
	for i := 2; r.taken[final]; i++ {
		final = fmt.Sprintf("%s_%d", name, i)
	}
	r.taken[final] = true
	r.groups = append(r.groups, group{name: final, collect: c})
	return final
}

// Sample is one gathered metric value.
type Sample struct {
	// Name is the full metric name, e.g. "hbc_sched_steals_total".
	Name  string
	Value float64
}

// Gather invokes every collector and returns the samples in registration
// order (stable within a group in emission order).
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	groups := make([]group, len(r.groups))
	copy(groups, r.groups)
	r.mu.Unlock()
	var out []Sample
	for _, g := range groups {
		prefix := "hbc_" + g.name + "_"
		g.collect(func(metric string, v float64) {
			out = append(out, Sample{Name: prefix + sanitize(metric), Value: v})
		})
	}
	return out
}

// sanitize maps a name onto the Prometheus metric-name alphabet.
func sanitize(s string) string {
	var sb strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

// WritePrometheus writes every gathered sample in Prometheus text
// exposition format (version 0.0.4). Names ending in _total are typed as
// counters, everything else as gauges.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, s := range r.Gather() {
		typ := "gauge"
		if strings.HasSuffix(s.Name, "_total") {
			typ = "counter"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %v\n", s.Name, typ, s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}

// ExpvarJSON renders the gathered samples as one JSON object with sorted
// keys — the shape expvar consumers expect.
func (r *Registry) ExpvarJSON() string {
	samples := r.Gather()
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		m[s.Name] = s.Value
	}
	b, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// expvarPublished guards the process-global expvar namespace: expvar.Publish
// panics on duplicate names, and tests create many registries.
var expvarPublished sync.Map // name -> *Registry holder

type expvarHolder struct {
	mu sync.Mutex
	r  *Registry
}

// PublishExpvar exposes the registry under the given expvar name (e.g. on
// the standard /debug/vars endpoint). Idempotent: publishing a second
// registry under the same name atomically replaces the first rather than
// panicking, so short-lived teams in tests can share the name.
func (r *Registry) PublishExpvar(name string) {
	hAny, loaded := expvarPublished.LoadOrStore(name, &expvarHolder{r: r})
	h := hAny.(*expvarHolder)
	h.mu.Lock()
	h.r = r
	h.mu.Unlock()
	if !loaded {
		expvar.Publish(name, expvar.Func(func() any {
			h.mu.Lock()
			reg := h.r
			h.mu.Unlock()
			var raw json.RawMessage = []byte(reg.ExpvarJSON())
			return raw
		}))
	}
}

// Handler returns an http.Handler serving the registry:
//
//	GET /metrics  Prometheus text exposition format
//	GET /vars     expvar-style JSON
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = io.WriteString(w, r.ExpvarJSON())
	})
	return mux
}

// MetricsServer is a running opt-in HTTP metrics endpoint; see Serve.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the address the server is listening on (useful with ":0").
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close shuts the listener down.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// Serve starts an HTTP server on addr exposing Handler's routes — the
// opt-in scrape endpoint a serving stack points Prometheus at. The server
// runs until Close is called on the returned handle.
func (r *Registry) Serve(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{ln: ln, srv: srv}, nil
}
