package graph

import "math"

// Serial reference kernels for the six GraphIt-derived benchmarks. The
// parallel versions in internal/workloads must match these exactly (the
// kernels are written so iteration order does not affect the result).

// PageRankDamping is the conventional damping factor.
const PageRankDamping = 0.85

// PageRank runs iters DensePull pagerank sweeps and returns the rank
// vector. Dangling mass is ignored (as GraphIt's basic pr is written).
func PageRank(g *Graph, iters int) []float64 {
	rank := make([]float64, g.N)
	contrib := make([]float64, g.N)
	next := make([]float64, g.N)
	for v := range rank {
		rank[v] = 1 / float64(g.N)
	}
	base := (1 - PageRankDamping) / float64(g.N)
	for it := 0; it < iters; it++ {
		for u := int64(0); u < g.N; u++ {
			if g.OutDeg[u] > 0 {
				contrib[u] = rank[u] / float64(g.OutDeg[u])
			} else {
				contrib[u] = 0
			}
		}
		for v := int64(0); v < g.N; v++ {
			var s float64
			for p := g.InPtr[v]; p < g.InPtr[v+1]; p++ {
				s += contrib[g.InAdj[p]]
			}
			next[v] = base + PageRankDamping*s
		}
		rank, next = next, rank
	}
	return rank
}

// PageRankDelta runs delta-based pagerank: per sweep, only vertices whose
// incoming delta mass exceeds epsilon·degree propagate. Returns the rank
// vector after iters sweeps.
func PageRankDelta(g *Graph, iters int, epsilon float64) []float64 {
	rank := make([]float64, g.N)
	delta := make([]float64, g.N)
	contrib := make([]float64, g.N)
	ndelta := make([]float64, g.N)
	for v := range rank {
		rank[v] = (1 - PageRankDamping) / float64(g.N)
		delta[v] = rank[v]
	}
	for it := 0; it < iters; it++ {
		for u := int64(0); u < g.N; u++ {
			contrib[u] = 0
			if g.OutDeg[u] > 0 && math.Abs(delta[u]) > epsilon/float64(g.N) {
				contrib[u] = PageRankDamping * delta[u] / float64(g.OutDeg[u])
			}
		}
		for v := int64(0); v < g.N; v++ {
			var s float64
			for p := g.InPtr[v]; p < g.InPtr[v+1]; p++ {
				s += contrib[g.InAdj[p]]
			}
			ndelta[v] = s
			rank[v] += s
		}
		delta, ndelta = ndelta, delta
	}
	return rank
}

// BFS runs level-synchronous DensePull breadth-first search from src over
// the in-edge structure (an edge u→v lets the frontier spread from u to v)
// and returns per-vertex levels (-1 for unreachable).
func BFS(g *Graph, src int64) []int32 {
	level := make([]int32, g.N)
	for v := range level {
		level[v] = -1
	}
	level[src] = 0
	cur := int32(0)
	for {
		advanced := false
		for v := int64(0); v < g.N; v++ {
			if level[v] != -1 {
				continue
			}
			for p := g.InPtr[v]; p < g.InPtr[v+1]; p++ {
				if level[g.InAdj[p]] == cur {
					level[v] = cur + 1
					advanced = true
					break
				}
			}
		}
		if !advanced {
			return level
		}
		cur++
	}
}

// CC runs label-propagation connected components (treating edges as
// undirected is the caller's choice of graph build; this propagates along
// in-edges) until a fixed point and returns the component labels.
func CC(g *Graph) []int32 {
	label := make([]int32, g.N)
	for v := range label {
		label[v] = int32(v)
	}
	for changedAny := true; changedAny; {
		changedAny = false
		for v := int64(0); v < g.N; v++ {
			m := label[v]
			for p := g.InPtr[v]; p < g.InPtr[v+1]; p++ {
				if l := label[g.InAdj[p]]; l < m {
					m = l
				}
			}
			if m < label[v] {
				label[v] = m
				changedAny = true
			}
		}
	}
	return label
}

// Inf is the SSSP distance for unreachable vertices.
const Inf = math.MaxFloat64

// SSSP runs Bellman-Ford rounds in DensePull form from src and returns
// shortest distances along in-edges (u→v relaxes dist[v] via dist[u]+w).
func SSSP(g *Graph, src int64) []float64 {
	dist := make([]float64, g.N)
	for v := range dist {
		dist[v] = Inf
	}
	dist[src] = 0
	for round := int64(0); round < g.N; round++ {
		changed := false
		for v := int64(0); v < g.N; v++ {
			d := dist[v]
			for p := g.InPtr[v]; p < g.InPtr[v+1]; p++ {
				if du := dist[g.InAdj[p]]; du != Inf && du+g.InW[p] < d {
					d = du + g.InW[p]
				}
			}
			if d < dist[v] {
				dist[v] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// CFK is the latent-factor dimensionality of the cf benchmark.
const CFK = 8

// CF runs iters sweeps of pull-style collaborative filtering (a Jacobi
// gradient step of matrix factorization): each vertex refreshes its latent
// vector from its in-neighbors' vectors and edge ratings. Returns the
// flattened N×CFK latent matrix.
func CF(g *Graph, iters int, step float64) []float64 {
	lat := make([]float64, g.N*CFK)
	for i := range lat {
		lat[i] = 0.5 + float64(i%7)/14
	}
	next := make([]float64, g.N*CFK)
	for it := 0; it < iters; it++ {
		for v := int64(0); v < g.N; v++ {
			var grad [CFK]float64
			base := v * CFK
			for p := g.InPtr[v]; p < g.InPtr[v+1]; p++ {
				u := int64(g.InAdj[p]) * CFK
				var est float64
				for k := int64(0); k < CFK; k++ {
					est += lat[base+k] * lat[u+k]
				}
				err := g.InW[p] - est
				for k := int64(0); k < CFK; k++ {
					grad[k] += err * lat[u+k]
				}
			}
			for k := int64(0); k < CFK; k++ {
				next[base+k] = lat[base+k] + step*grad[k]
			}
		}
		lat, next = next, lat
	}
	return lat
}
