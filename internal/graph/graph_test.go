package graph

import (
	"math"
	"testing"
	"testing/quick"
)

// line builds a simple path graph 0→1→2→...→n-1 with unit weights.
func line(n int64) *Graph {
	src := make([]int32, n-1)
	dst := make([]int32, n-1)
	for i := int64(0); i < n-1; i++ {
		src[i], dst[i] = int32(i), int32(i+1)
	}
	return FromEdges(n, src, dst, nil)
}

func TestFromEdgesStructure(t *testing.T) {
	g := FromEdges(4,
		[]int32{0, 0, 1, 2, 3},
		[]int32{1, 2, 2, 3, 0},
		func(e int64) float64 { return float64(e + 1) })
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 5 {
		t.Fatalf("edges = %d, want 5", g.M())
	}
	if g.InDeg(2) != 2 {
		t.Fatalf("InDeg(2) = %d, want 2", g.InDeg(2))
	}
	if g.OutDeg[0] != 2 {
		t.Fatalf("OutDeg[0] = %d, want 2", g.OutDeg[0])
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(10, 8, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 1024 || g.M() != 8*1024 {
		t.Fatalf("N=%d M=%d, want 1024, 8192", g.N, g.M())
	}
	// Power-law skew: the max in-degree dwarfs the average.
	if g.MaxInDeg() < 4*8 {
		t.Fatalf("MaxInDeg = %d: RMAT skew missing", g.MaxInDeg())
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 4, 7)
	b := RMAT(8, 4, 7)
	for i := range a.InAdj {
		if a.InAdj[i] != b.InAdj[i] {
			t.Fatal("RMAT not deterministic")
		}
	}
}

func TestBFSLine(t *testing.T) {
	g := line(6)
	lv := BFS(g, 0)
	for i := int64(0); i < 6; i++ {
		if lv[i] != int32(i) {
			t.Fatalf("level[%d] = %d, want %d", i, lv[i], i)
		}
	}
	// From the middle: upstream vertices unreachable.
	lv = BFS(g, 3)
	if lv[2] != -1 || lv[5] != 2 {
		t.Fatalf("levels from 3: %v", lv)
	}
}

func TestCCTwoComponents(t *testing.T) {
	// 0↔1↔2 and 3↔4 (both directions so propagation settles to the min id).
	src := []int32{0, 1, 1, 2, 3, 4}
	dst := []int32{1, 0, 2, 1, 4, 3}
	g := FromEdges(5, src, dst, nil)
	label := CC(g)
	if label[0] != 0 || label[1] != 0 || label[2] != 0 {
		t.Fatalf("component A labels: %v", label)
	}
	if label[3] != 3 || label[4] != 3 {
		t.Fatalf("component B labels: %v", label)
	}
}

func TestSSSPLine(t *testing.T) {
	g := line(5)
	d := SSSP(g, 0)
	for i := int64(0); i < 5; i++ {
		if d[i] != float64(i) {
			t.Fatalf("dist[%d] = %g, want %d", i, d[i], i)
		}
	}
	d = SSSP(g, 2)
	if d[1] != Inf || d[4] != 2 {
		t.Fatalf("dist from 2: %v", d)
	}
}

func TestSSSPShorterPathWins(t *testing.T) {
	// 0→1 (w 10), 0→2 (w 1), 2→1 (w 1): dist[1] = 2.
	src := []int32{0, 0, 2}
	dst := []int32{1, 2, 1}
	w := []float64{10, 1, 1}
	g := FromEdges(3, src, dst, func(e int64) float64 { return w[e] })
	d := SSSP(g, 0)
	if d[1] != 2 {
		t.Fatalf("dist[1] = %g, want 2", d[1])
	}
}

func TestPageRankConservesMassOnCycle(t *testing.T) {
	// A directed cycle: uniform rank is the fixed point, total mass 1.
	n := int64(10)
	src := make([]int32, n)
	dst := make([]int32, n)
	for i := int64(0); i < n; i++ {
		src[i], dst[i] = int32(i), int32((i+1)%n)
	}
	g := FromEdges(n, src, dst, nil)
	r := PageRank(g, 30)
	var sum float64
	for _, v := range r {
		sum += v
		if math.Abs(v-0.1) > 1e-9 {
			t.Fatalf("cycle rank %g, want 0.1", v)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rank mass = %g, want 1", sum)
	}
}

func TestPageRankDeltaApproachesPageRank(t *testing.T) {
	// The two formulations share a fixed point but approach it from
	// different initial transients, which decay as damping^t — hence the
	// long run and the matching tolerance.
	g := RMAT(8, 6, 3)
	exact := PageRank(g, 120)
	delta := PageRankDelta(g, 120, 0) // epsilon 0: no pruning
	for v := range exact {
		if math.Abs(exact[v]-delta[v]) > 1e-7 {
			t.Fatalf("pr-delta[%d] = %g, pr = %g", v, delta[v], exact[v])
		}
	}
}

func TestCFReducesError(t *testing.T) {
	g := RMAT(7, 5, 9)
	mse := func(lat []float64) float64 {
		var s float64
		var m int64
		for v := int64(0); v < g.N; v++ {
			for p := g.InPtr[v]; p < g.InPtr[v+1]; p++ {
				u := int64(g.InAdj[p]) * CFK
				var est float64
				for k := int64(0); k < CFK; k++ {
					est += lat[v*CFK+k] * lat[u+k]
				}
				d := g.InW[p] - est
				s += d * d
				m++
			}
		}
		return s / float64(m)
	}
	l1 := CF(g, 1, 0.001)
	l10 := CF(g, 10, 0.001)
	if mse(l10) >= mse(l1) {
		t.Fatalf("CF not converging: mse(10)=%g >= mse(1)=%g", mse(l10), mse(l1))
	}
}

func TestQuickFromEdgesValid(t *testing.T) {
	f := func(edges []uint16, nSeed uint8) bool {
		n := int64(nSeed)%50 + 2
		src := make([]int32, len(edges))
		dst := make([]int32, len(edges))
		for i, e := range edges {
			src[i] = int32(int64(e) % n)
			dst[i] = int32(int64(e/7) % n)
		}
		g := FromEdges(n, src, dst, nil)
		return g.Validate() == nil && g.M() == int64(len(edges))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
