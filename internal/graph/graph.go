// Package graph provides compressed sparse-row graphs, an RMAT (Kronecker)
// generator, and serial reference implementations of the paper's GraphIt
// benchmarks: bfs, cc, pr, pr-delta, sssp and cf.
//
// The paper evaluates on the Twitter (25 GB) and LiveJournal social graphs
// from SNAP; RMAT substitutes a Kronecker graph with Graph500's skew
// parameters, whose power-law degree distribution reproduces the heavy-tail
// irregularity those inputs exercise. All kernels use the DensePull
// direction the paper selects (§6.1): the outer DOALL loop visits every
// destination vertex, and the inner loop gathers from its in-neighbors, so
// per-iteration work varies with in-degree.
package graph

import (
	"fmt"
	"math/rand"
)

// Graph is a directed graph in pull layout: for each vertex, its in-edges.
type Graph struct {
	N int64
	// InPtr has N+1 entries: vertex v's in-neighbors are
	// InAdj[InPtr[v]:InPtr[v+1]], with parallel edge weights InW.
	InPtr []int64
	InAdj []int32
	InW   []float64
	// OutDeg[u] is the out-degree of u, needed by pagerank.
	OutDeg []int32
}

// M returns the number of edges.
func (g *Graph) M() int64 { return int64(len(g.InAdj)) }

// InDeg returns the in-degree of v.
func (g *Graph) InDeg(v int64) int64 { return g.InPtr[v+1] - g.InPtr[v] }

// Validate checks structural invariants.
func (g *Graph) Validate() error {
	if int64(len(g.InPtr)) != g.N+1 {
		return fmt.Errorf("graph: InPtr len %d != N+1 %d", len(g.InPtr), g.N+1)
	}
	if len(g.InAdj) != len(g.InW) {
		return fmt.Errorf("graph: adj/weight length mismatch")
	}
	if int64(len(g.OutDeg)) != g.N {
		return fmt.Errorf("graph: OutDeg len %d != N %d", len(g.OutDeg), g.N)
	}
	var outSum int64
	for _, d := range g.OutDeg {
		outSum += int64(d)
	}
	if outSum != g.M() {
		return fmt.Errorf("graph: out-degree sum %d != edges %d", outSum, g.M())
	}
	for v := int64(0); v < g.N; v++ {
		if g.InPtr[v] > g.InPtr[v+1] {
			return fmt.Errorf("graph: InPtr not monotone at %d", v)
		}
	}
	for _, u := range g.InAdj {
		if int64(u) < 0 || int64(u) >= g.N {
			return fmt.Errorf("graph: vertex %d out of range", u)
		}
	}
	return nil
}

// RMAT generates a Kronecker graph with 2^scale vertices and about
// avgDeg·2^scale edges using the Graph500 parameters (a=0.57, b=0.19,
// c=0.19), producing the power-law in-degree skew of social graphs.
// Self-loops are kept (they are harmless to the kernels); duplicate edges
// are kept as parallel edges, as Graph500 does.
func RMAT(scale int, avgDeg int64, seed int64) *Graph {
	n := int64(1) << scale
	m := avgDeg * n
	rng := rand.New(rand.NewSource(seed))
	src := make([]int32, m)
	dst := make([]int32, m)
	const a, b, c = 0.57, 0.19, 0.19
	for e := int64(0); e < m; e++ {
		var u, v int64
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		src[e], dst[e] = int32(u), int32(v)
	}
	return FromEdges(n, src, dst, func(e int64) float64 {
		return 1 + float64(e%9)
	})
}

// FromEdges builds the pull-layout graph from an edge list. weight gives
// the weight of edge e; pass nil for unit weights.
func FromEdges(n int64, src, dst []int32, weight func(e int64) float64) *Graph {
	g := &Graph{N: n, InPtr: make([]int64, n+1), OutDeg: make([]int32, n)}
	counts := make([]int64, n+1)
	for _, v := range dst {
		counts[v+1]++
	}
	for v := int64(0); v < n; v++ {
		g.InPtr[v+1] = g.InPtr[v] + counts[v+1]
	}
	g.InAdj = make([]int32, len(src))
	g.InW = make([]float64, len(src))
	fill := make([]int64, n)
	for e := range src {
		v := dst[e]
		p := g.InPtr[v] + fill[v]
		fill[v]++
		g.InAdj[p] = src[e]
		w := 1.0
		if weight != nil {
			w = weight(int64(e))
		}
		g.InW[p] = w
		g.OutDeg[src[e]]++
	}
	return g
}

// MaxInDeg returns the largest in-degree — the skew indicator.
func (g *Graph) MaxInDeg() int64 {
	var mx int64
	for v := int64(0); v < g.N; v++ {
		if d := g.InDeg(v); d > mx {
			mx = d
		}
	}
	return mx
}
