// Package tensor provides third-order sparse tensors in compressed sparse
// fiber (CSF) layout and the TTV/TTM kernels of the paper's TACO-derived
// benchmarks.
//
// The paper stores its tensors "dense for the first dimension and sparse
// for the rest" (§6.1); CSF3 uses the same layout: mode-0 indexes directly,
// each i owning a sparse set of j-fibers, each fiber a sparse set of k
// entries. The paper's input is NELL-2 from FROSTT (a 1.5 GB download
// gate); PowerLawTensor substitutes a synthetic tensor whose fiber counts
// follow a power law, preserving the skewed per-iteration work that makes
// ttv and ttm irregular.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// CSF3 is a third-order sparse tensor: dimension I dense, J and K sparse.
type CSF3 struct {
	I, J, K int64
	// JPtr has I+1 entries: slice i's j-fibers live at [JPtr[i], JPtr[i+1])
	// in JInd.
	JPtr []int64
	JInd []int32
	// KPtr has len(JInd)+1 entries: fiber f's entries live at
	// [KPtr[f], KPtr[f+1]) in KInd and Val.
	KPtr []int64
	KInd []int32
	Val  []float64
}

// NNZ returns the number of stored entries.
func (t *CSF3) NNZ() int64 { return int64(len(t.Val)) }

// Fibers returns the number of (i, j) fibers.
func (t *CSF3) Fibers() int64 { return int64(len(t.JInd)) }

// Validate checks the CSF structural invariants.
func (t *CSF3) Validate() error {
	if int64(len(t.JPtr)) != t.I+1 {
		return fmt.Errorf("tensor: JPtr len %d != I+1 %d", len(t.JPtr), t.I+1)
	}
	if int64(len(t.KPtr)) != t.Fibers()+1 {
		return fmt.Errorf("tensor: KPtr len %d != fibers+1 %d", len(t.KPtr), t.Fibers()+1)
	}
	if len(t.KInd) != len(t.Val) {
		return fmt.Errorf("tensor: KInd len %d != Val len %d", len(t.KInd), len(t.Val))
	}
	for i := int64(0); i < t.I; i++ {
		if t.JPtr[i] > t.JPtr[i+1] {
			return fmt.Errorf("tensor: JPtr not monotone at %d", i)
		}
	}
	for f := int64(0); f < t.Fibers(); f++ {
		if t.KPtr[f] > t.KPtr[f+1] {
			return fmt.Errorf("tensor: KPtr not monotone at fiber %d", f)
		}
	}
	for _, j := range t.JInd {
		if int64(j) < 0 || int64(j) >= t.J {
			return fmt.Errorf("tensor: j index %d out of range", j)
		}
	}
	for _, k := range t.KInd {
		if int64(k) < 0 || int64(k) >= t.K {
			return fmt.Errorf("tensor: k index %d out of range", k)
		}
	}
	return nil
}

// TTV computes the tensor-times-vector product serially:
// out[i*J+j] = Σ_k T[i,j,k]·v[k], with out dense of size I×J.
func (t *CSF3) TTV(v []float64, out []float64) {
	for i := int64(0); i < t.I; i++ {
		for f := t.JPtr[i]; f < t.JPtr[i+1]; f++ {
			var s float64
			for p := t.KPtr[f]; p < t.KPtr[f+1]; p++ {
				s += t.Val[p] * v[t.KInd[p]]
			}
			out[i*t.J+int64(t.JInd[f])] = s
		}
	}
}

// TTM computes the tensor-times-matrix product serially:
// out[(i*J+j)*R+r] = Σ_k T[i,j,k]·M[k*R+r], with out dense of size I×J×R.
func (t *CSF3) TTM(m []float64, r int64, out []float64) {
	for i := int64(0); i < t.I; i++ {
		for f := t.JPtr[i]; f < t.JPtr[i+1]; f++ {
			row := (i*t.J + int64(t.JInd[f])) * r
			for p := t.KPtr[f]; p < t.KPtr[f+1]; p++ {
				v := t.Val[p]
				mrow := int64(t.KInd[p]) * r
				for c := int64(0); c < r; c++ {
					out[row+c] += v * m[mrow+c]
				}
			}
		}
	}
}

// PowerLawTensor builds an I×J×K tensor where slice i owns about
// maxFibers/(1+i)^alpha j-fibers and each fiber holds a power-law number of
// k entries — the NELL-2-like skew that drives the paper's irregular
// nested-loop behavior in ttv/ttm.
func PowerLawTensor(i, j, k, maxFibers, maxPerFiber int64, alpha float64, seed int64) *CSF3 {
	rng := rand.New(rand.NewSource(seed))
	t := &CSF3{I: i, J: j, K: k, JPtr: make([]int64, i+1)}
	t.KPtr = append(t.KPtr, 0)
	for s := int64(0); s < i; s++ {
		nf := int64(float64(maxFibers) / math.Pow(float64(s+1), alpha))
		if nf < 1 {
			nf = 1
		}
		if nf > j {
			nf = j
		}
		js := uniqueSorted(rng, nf, j)
		for fi, jv := range js {
			nk := int64(float64(maxPerFiber)/math.Pow(float64(fi+1), alpha)) + 1
			if nk > k {
				nk = k
			}
			ks := uniqueSorted(rng, nk, k)
			t.JInd = append(t.JInd, jv)
			for _, kv := range ks {
				t.KInd = append(t.KInd, kv)
				t.Val = append(t.Val, 1+float64((int64(jv)+int64(kv))%5)/5)
			}
			t.KPtr = append(t.KPtr, int64(len(t.KInd)))
		}
		t.JPtr[s+1] = int64(len(t.JInd))
	}
	return t
}

// uniqueSorted draws n distinct values from [0, max) in ascending order.
func uniqueSorted(rng *rand.Rand, n, max int64) []int32 {
	if n > max {
		n = max
	}
	seen := make(map[int32]bool, n)
	out := make([]int32, 0, n)
	for int64(len(out)) < n {
		v := int32(rng.Int63n(max))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
