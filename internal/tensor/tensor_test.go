package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func tiny() *CSF3 {
	// A hand-built 2×3×4 tensor:
	//   (0,0,1)=2  (0,0,3)=1  (0,2,0)=5
	//   (1,1,2)=3
	return &CSF3{
		I: 2, J: 3, K: 4,
		JPtr: []int64{0, 2, 3},
		JInd: []int32{0, 2, 1},
		KPtr: []int64{0, 2, 3, 4},
		KInd: []int32{1, 3, 0, 2},
		Val:  []float64{2, 1, 5, 3},
	}
}

func TestValidateTiny(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTTVByHand(t *testing.T) {
	ts := tiny()
	v := []float64{10, 20, 30, 40}
	out := make([]float64, ts.I*ts.J)
	ts.TTV(v, out)
	// (0,0): 2*20 + 1*40 = 80; (0,2): 5*10 = 50; (1,1): 3*30 = 90.
	want := []float64{80, 0, 50, 0, 90, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("TTV[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

func TestTTMByHand(t *testing.T) {
	ts := tiny()
	const r = 2
	m := make([]float64, ts.K*r)
	for k := int64(0); k < ts.K; k++ {
		m[k*r] = float64(k + 1)
		m[k*r+1] = 1
	}
	out := make([]float64, ts.I*ts.J*r)
	ts.TTM(m, r, out)
	// (0,0,0): 2*m[1][0] + 1*m[3][0] = 2*2 + 1*4 = 8; (0,0,1): 2+1 = 3.
	if out[0] != 8 || out[1] != 3 {
		t.Fatalf("TTM (0,0) = (%g,%g), want (8,3)", out[0], out[1])
	}
	// (0,2,0): 5*m[0][0] = 5; (0,2,1): 5.
	base := (0*ts.J + 2) * r
	if out[base] != 5 || out[base+1] != 5 {
		t.Fatalf("TTM (0,2) = (%g,%g), want (5,5)", out[base], out[base+1])
	}
	// (1,1,0): 3*m[2][0] = 9; (1,1,1): 3.
	base = (1*ts.J + 1) * r
	if out[base] != 9 || out[base+1] != 3 {
		t.Fatalf("TTM (1,1) = (%g,%g), want (9,3)", out[base], out[base+1])
	}
}

func TestTTMConsistentWithTTVColumns(t *testing.T) {
	// TTM with an R=1 matrix equals TTV with that column.
	ts := PowerLawTensor(20, 15, 12, 10, 8, 0.8, 5)
	v := make([]float64, ts.K)
	for i := range v {
		v[i] = float64(i%5) + 0.25
	}
	ttv := make([]float64, ts.I*ts.J)
	ts.TTV(v, ttv)
	ttm := make([]float64, ts.I*ts.J)
	ts.TTM(v, 1, ttm)
	for i := range ttv {
		if math.Abs(ttv[i]-ttm[i]) > 1e-12 {
			t.Fatalf("[%d] TTV %g != TTM %g", i, ttv[i], ttm[i])
		}
	}
}

func TestPowerLawTensorShape(t *testing.T) {
	ts := PowerLawTensor(50, 40, 30, 20, 16, 0.9, 1)
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if ts.NNZ() == 0 {
		t.Fatal("empty tensor")
	}
	// Skew: slice 0 owns more fibers than slice 49.
	if ts.JPtr[1]-ts.JPtr[0] <= ts.JPtr[50]-ts.JPtr[49] {
		t.Fatalf("fiber counts not skewed: first=%d last=%d",
			ts.JPtr[1]-ts.JPtr[0], ts.JPtr[50]-ts.JPtr[49])
	}
	// Fibers are unique and sorted per slice.
	for i := int64(0); i < ts.I; i++ {
		for f := ts.JPtr[i] + 1; f < ts.JPtr[i+1]; f++ {
			if ts.JInd[f-1] >= ts.JInd[f] {
				t.Fatalf("slice %d fibers not strictly ascending", i)
			}
		}
	}
}

func TestQuickTensorValid(t *testing.T) {
	f := func(iSeed, jSeed, kSeed, seed uint8) bool {
		i := int64(iSeed)%30 + 1
		j := int64(jSeed)%20 + 1
		k := int64(kSeed)%20 + 1
		ts := PowerLawTensor(i, j, k, j/2+1, k/2+1, 0.8, int64(seed))
		return ts.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	a := PowerLawTensor(10, 10, 10, 5, 5, 0.8, 9)
	b := PowerLawTensor(10, 10, 10, 5, 5, 0.8, 9)
	if a.NNZ() != b.NNZ() {
		t.Fatal("tensor generation not deterministic")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			t.Fatal("tensor generation not deterministic")
		}
	}
}
