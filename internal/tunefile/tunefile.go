// Package tunefile persists per-kernel scheduling-policy choices — the
// contract between the auto-tuner (cmd/hbctune -policies -save) and the
// serve layer (serve.WithTunedPolicies), which loads the file and applies
// each kernel's winning policy when it compiles that kernel.
//
// The file is plain JSON, keyed by kernel name:
//
//	{
//	  "version": 1,
//	  "kernels": {
//	    "spmv": {"policy": "adaptive", "target_polls": 4, "window_size": 8,
//	             "median_ns": 1234567, "workers": 8}
//	  }
//	}
//
// Only the policy name is required; the remaining knobs default to the
// runtime's own defaults when omitted. MedianNs and Workers are provenance
// (what the tuner measured, at what team size), not configuration.
package tunefile

import (
	"encoding/json"
	"fmt"
	"os"

	"hbc/internal/core"
)

// Version is the current file schema version.
const Version = 1

// Choice is one kernel's tuned scheduling configuration.
type Choice struct {
	// Policy is the schedule name (core.ScheduleNames): "adaptive",
	// "static", "guided", "factoring", "trapezoid", "weighted", "auto", ...
	Policy string `json:"policy"`
	// StaticChunk is the chunk size for the static policy (and the static
	// candidate under auto); 0 keeps the default.
	StaticChunk int64 `json:"static_chunk,omitempty"`
	// MinChunk floors the decreasing schedules; 0 keeps the default (1).
	MinChunk int64 `json:"min_chunk,omitempty"`
	// TargetPolls / WindowSize tune Adaptive Chunking; 0 keeps defaults.
	TargetPolls int64 `json:"target_polls,omitempty"`
	WindowSize  int   `json:"window_size,omitempty"`
	// ProfileRuns is the auto selector's per-candidate profiling length.
	ProfileRuns int `json:"profile_runs,omitempty"`
	// MedianNs is the median invocation time the tuner measured for this
	// choice, for provenance and staleness checks.
	MedianNs int64 `json:"median_ns,omitempty"`
	// Workers is the team size the tuner measured at.
	Workers int `json:"workers,omitempty"`
}

// Validate checks the choice is applicable: a known policy name and
// non-negative knobs.
func (c Choice) Validate() error {
	if _, err := core.ParseChunkKind(c.Policy); err != nil {
		return err
	}
	if c.StaticChunk < 0 || c.MinChunk < 0 || c.TargetPolls < 0 || c.WindowSize < 0 || c.ProfileRuns < 0 {
		return fmt.Errorf("tunefile: negative tuning knob in %+v", c)
	}
	return nil
}

// Options applies the choice onto core options, for consumers that drive
// the core runtime directly (benchmarks, the tuner itself). Zero-valued
// knobs keep whatever o already holds.
func (c Choice) Options(o core.Options) (core.Options, error) {
	if err := c.Validate(); err != nil {
		return o, err
	}
	kind, err := core.ParseChunkKind(c.Policy)
	if err != nil {
		return o, err
	}
	o.Chunk.Kind = kind
	if c.StaticChunk > 0 {
		o.Chunk.Size = c.StaticChunk
	}
	if c.MinChunk > 0 {
		o.Chunk.MinChunk = c.MinChunk
	}
	if c.ProfileRuns > 0 {
		o.Chunk.ProfileRuns = c.ProfileRuns
	}
	if c.TargetPolls > 0 {
		o.TargetPolls = c.TargetPolls
	}
	if c.WindowSize > 0 {
		o.WindowSize = c.WindowSize
	}
	return o, nil
}

// File is a set of per-kernel choices.
type File struct {
	Version int               `json:"version"`
	Kernels map[string]Choice `json:"kernels"`
}

// New returns an empty tuning file at the current version.
func New() *File {
	return &File{Version: Version, Kernels: map[string]Choice{}}
}

// Set records kernel's choice.
func (f *File) Set(kernel string, c Choice) {
	if f.Kernels == nil {
		f.Kernels = map[string]Choice{}
	}
	f.Kernels[kernel] = c
}

// Get returns kernel's choice, if present.
func (f *File) Get(kernel string) (Choice, bool) {
	c, ok := f.Kernels[kernel]
	return c, ok
}

// Load reads and validates a tuning file. Every entry must carry a known
// policy name — a file written for a future schema or with a typo'd policy
// fails here, at startup, rather than at first request.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &File{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("tunefile: %s: %w", path, err)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("tunefile: %s: version %d, want %d", path, f.Version, Version)
	}
	for kernel, c := range f.Kernels {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("tunefile: %s: kernel %q: %w", path, kernel, err)
		}
	}
	return f, nil
}

// Save writes the file as indented JSON (map keys sort, so output is
// deterministic and diff-friendly).
func (f *File) Save(path string) error {
	if f.Version == 0 {
		f.Version = Version
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
