package tunefile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbc/internal/core"
)

func TestRoundTrip(t *testing.T) {
	f := New()
	f.Set("spmv", Choice{Policy: "adaptive", TargetPolls: 8, WindowSize: 4, MedianNs: 123, Workers: 4})
	f.Set("mandelbrot", Choice{Policy: "guided", MinChunk: 16})
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Version != Version {
		t.Fatalf("version = %d, want %d", g.Version, Version)
	}
	c, ok := g.Get("spmv")
	if !ok || c.Policy != "adaptive" || c.TargetPolls != 8 || c.MedianNs != 123 {
		t.Fatalf("spmv choice = %+v, ok=%v", c, ok)
	}
	if _, ok := g.Get("missing"); ok {
		t.Fatal("Get on a missing kernel reported ok")
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, body, want string
	}{
		{"bad version", `{"version": 99, "kernels": {}}`, "version"},
		{"unknown policy", `{"version": 1, "kernels": {"k": {"policy": "banana"}}}`, "banana"},
		{"negative knob", `{"version": 1, "kernels": {"k": {"policy": "static", "static_chunk": -4}}}`, "negative"},
		{"not json", `nope`, "invalid"},
	}
	for _, c := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(c.name, " ", "_")+".json")
		if err := os.WriteFile(path, []byte(c.body), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(path)
		if err == nil {
			t.Errorf("%s: Load accepted the file", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestChoiceOptions(t *testing.T) {
	base := core.Options{TargetPolls: 4, WindowSize: 8}
	o, err := Choice{Policy: "trapezoid", MinChunk: 8, TargetPolls: 16}.Options(base)
	if err != nil {
		t.Fatal(err)
	}
	if o.Chunk.Kind != core.ChunkTrapezoid || o.Chunk.MinChunk != 8 {
		t.Fatalf("applied options = %+v", o.Chunk)
	}
	if o.TargetPolls != 16 || o.WindowSize != 8 {
		t.Fatalf("knobs = target %d window %d, want 16/8", o.TargetPolls, o.WindowSize)
	}
	if _, err := (Choice{Policy: "nope"}).Options(base); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
