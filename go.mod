module hbc

go 1.22
