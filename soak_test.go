package hbc

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestSoakRandomizedNests hammers the whole stack for a couple of seconds
// with randomized nest shapes, worker counts, heartbeat rates and signal
// mechanisms, checking exact iteration coverage on every run. Skipped in
// -short mode.
func TestSoakRandomizedNests(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(42))
	deadline := time.Now().Add(2 * time.Second)
	runs := 0
	for time.Now().Before(deadline) {
		runs++
		workers := rng.Intn(4) + 1
		signal := Signal(rng.Intn(4))
		period := time.Duration(rng.Intn(180)+20) * time.Microsecond
		outer := int64(rng.Intn(300) + 1)
		inner := int64(rng.Intn(80) + 1)
		cfg := Config{}
		switch rng.Intn(4) {
		case 0:
			cfg.StaticChunk = int64(rng.Intn(30) + 1)
		case 1:
			cfg.NoChunking = true
		case 2:
			cfg.TPAL = true
			cfg.StaticChunk = 8
		}
		cfg.Policy = PromotionPolicy(rng.Intn(3))
		cfg.LatchPollEvery = int64(rng.Intn(4) + 1)

		team := NewTeam(Workers(workers), Heartbeat(period), WithSignal(signal))
		var covered atomic.Int64
		nest := &Nest{
			Name: "soak",
			Root: &Loop{
				Name:   "outer",
				Bounds: RangeN(outer),
				Children: []*Loop{{
					Name: "inner",
					Bounds: func(_ any, idx []int64) (int64, int64) {
						// Irregular: extent varies with the outer index.
						return 0, (idx[0] % inner) + 1
					},
					Body: func(_ any, _ []int64, lo, hi int64, _ any) {
						covered.Add(hi - lo)
					},
				}},
			},
		}
		prog := MustCompile(nest, cfg)
		r := team.Load(prog, nil)
		r.Run()
		r.Close()
		team.Close()

		var want int64
		for i := int64(0); i < outer; i++ {
			want += (i % inner) + 1
		}
		if got := covered.Load(); got != want {
			t.Fatalf("run %d (workers=%d signal=%v period=%v cfg=%+v): covered %d, want %d",
				runs, workers, signal, period, cfg, got, want)
		}
	}
	t.Logf("soak: %d randomized runs", runs)
}
