// Package hbc is a Go implementation of heartbeat scheduling for loop-based
// nested parallelism, reproducing the system of "Compiling Loop-Based Nested
// Parallelism for Irregular Workloads" (ASPLOS 2024).
//
// Heartbeat scheduling solves the granularity-control problem of fork-join
// parallel loops: expressing all available parallelism drowns irregular
// workloads in task overheads, while chunking iterations statically starves
// cores or unbalances them, with the right setting depending on the input.
// Under heartbeat scheduling a program runs sequentially and promotes latent
// parallelism only at heartbeats — periodic events arriving at a fixed rate —
// so task creation cost is amortized against real work by construction,
// while the asymptotic parallelism of the source program is preserved.
//
// # Quick start
//
//	team := hbc.NewTeam()          // workers = NumCPU, 100µs heartbeat
//	defer team.Close()
//	// All iterations of the range are logically parallel; the runtime
//	// decides at heartbeats how much of that parallelism to realize.
//	team.For(0, n, func(lo, hi int64) {
//	    for i := lo; i < hi; i++ { out[i] = f(in[i]) }
//	})
//
// # Nested loops
//
// Declare the whole DOALL nest — the analog of annotating every loop with
// `#pragma omp parallel for` and compiling with the paper's HBC — and the
// runtime promotes whichever level has parallelism left when a heartbeat
// arrives (outermost first):
//
//	nest := &hbc.Nest{Name: "spmv", Root: &hbc.Loop{ ... }}
//	prog, err := hbc.Compile(nest, hbc.Config{})
//	r := team.Load(prog, env)
//	defer r.Close()
//	r.Run()
//
// # Failure semantics
//
// Runner.RunCtx runs a nest with defined failure behaviour: cancelling the
// context (or passing one with a deadline) stops every task of the run at
// its next safepoint — the same chunk boundaries and interior latches where
// heartbeats are polled — and returns ctx.Err(); a panicking loop body is
// captured as a typed *PanicError naming the faulting loop and iteration,
// cancels the rest of the run the same way, and is returned as an error once
// all tasks have drained. The Team, Runner, and heartbeat source remain
// usable afterwards. The WithWatchdog option additionally guards against a
// silently stalled heartbeat source by failing over to plain timer polling.
//
// See examples/ for complete programs, and DESIGN.md for how this library
// maps onto the paper's compiler and runtime.
package hbc

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"hbc/internal/analysis"
	"hbc/internal/core"
	"hbc/internal/loopnest"
	"hbc/internal/pulse"
	"hbc/internal/sched"
	"hbc/internal/telemetry"
)

// PanicError is the error returned by Runner.RunCtx (and carried by the
// panic of Runner.Run) when a loop body, hook, or bounds function panics
// during a run. It identifies the faulting loop by its (level, index) ID and
// name, snapshots the induction variables from the loop-slice-task context
// chain, and holds the original panic value plus the worker stack.
type PanicError = core.PanicError

// ErrTeamClosed is returned when a run is attempted on a closed Team.
var ErrTeamClosed = sched.ErrTeamClosed

// Re-exported loop-nest IR types; see package loopnest for field semantics.
type (
	// Nest is a tree of DOALL loops with a single root.
	Nest = loopnest.Nest
	// Loop describes one DOALL loop: bounds, a leaf body or children, and
	// optional per-iteration hooks and reduction.
	Loop = loopnest.Loop
	// Reduction declares an associative combine across a loop's iterations.
	Reduction = loopnest.Reduction
	// Slice is the monomorphic leaf task entry used by generated kernels
	// (internal/codegen): a specialized chunking loop the executor calls
	// instead of the generic per-chunk driver around Body.
	Slice = loopnest.Slice
	// SliceRT is the runtime interface a Slice polls at chunk boundaries.
	SliceRT = loopnest.SliceRT
)

// Signal selects the heartbeat delivery mechanism (paper §4–§5).
type Signal int

const (
	// SignalPolling reads the monotonic clock at promotion-ready points —
	// the paper's software-polling default, needing no OS support.
	SignalPolling Signal = iota
	// SignalEpoch polls an atomic counter bumped by a ticker goroutine:
	// cheaper polls, one helper goroutine.
	SignalEpoch
	// SignalPing models TPAL's user-level interrupt ping thread.
	SignalPing
	// SignalKernel models the paper's Linux kernel module (hrtimer + IPI).
	SignalKernel
)

func (s Signal) String() string {
	switch s {
	case SignalEpoch:
		return "epoch"
	case SignalPing:
		return "ping"
	case SignalKernel:
		return "kernel"
	default:
		return "polling"
	}
}

// newSource builds a fresh pulse source for the signal kind.
func (s Signal) newSource() pulse.Source {
	switch s {
	case SignalEpoch:
		return pulse.NewEpoch()
	case SignalPing:
		return pulse.NewPing()
	case SignalKernel:
		return pulse.NewKernel()
	default:
		return pulse.NewTimer()
	}
}

// Topology describes a hierarchy of worker groups for topology-aware
// stealing: workers prefer victims in their own leaf group and widen the
// search outward only after the near tiers come up empty. The zero value is
// the flat topology (classic single-tier random-victim stealing). Construct
// one with ParseTopology ("2x4", "2x2x2"), DetectTopology (GOMAXPROCS
// grouped by a fan-out), or leave it unset and let the HBC_TOPOLOGY
// environment variable select one (EnvTopology).
type Topology = sched.Topology

// ParseTopology parses a topology spec: "" or "flat" for the flat topology,
// otherwise "AxBx..." fan-outs outermost first ("2x4", "2x2x2").
var ParseTopology = sched.ParseTopology

// MustParseTopology is ParseTopology panicking on error, for specs known at
// compile time.
var MustParseTopology = sched.MustParseTopology

// DetectTopology approximates the host hierarchy for n workers by grouping
// them with the given fan-out (workers per group) — the hwloc-less
// heuristic of hierarchical OpenMP runtimes.
var DetectTopology = sched.DetectTopology

// EnvTopology is the environment variable consulted when a team is created
// without an explicit WithTopology; see sched.EnvTopology.
const EnvTopology = sched.EnvTopology

// Team is a pool of workers executing heartbeat-scheduled loop nests.
type Team struct {
	ws        *sched.Team
	nworkers  int
	heartbeat time.Duration
	signal    Signal
	watchdog  int
	// topo is the explicit worker-group hierarchy (WithTopology); topoSet
	// distinguishes an explicit flat topology from "unset, consult
	// HBC_TOPOLOGY".
	topo    Topology
	topoSet bool
	// tel is the unified telemetry layer, nil unless WithTelemetry.
	tel *telemetry.Telemetry
	// telRing is the requested per-worker ring capacity; telOn records that
	// WithTelemetry was passed (the ring size alone cannot, since 0 selects
	// the default).
	telRing int
	telOn   bool
	// sharedReg, if non-nil, receives the team's metric groups instead of a
	// fresh registry (WithMetricsInto — the team-pool option).
	sharedReg *telemetry.Registry
	// name prefixes the team's metric-group names, so shards of a pool stay
	// distinguishable inside a shared registry.
	name string
	// wrapSource, if non-nil, wraps every heartbeat source Load creates —
	// the injection point fault testing uses.
	wrapSource func(pulse.Source) pulse.Source
}

// Option configures a Team.
type Option func(*Team)

// Workers sets the worker count. Defaults to runtime.NumCPU().
func Workers(n int) Option { return func(t *Team) { t.nworkers = n } }

// Heartbeat sets the heartbeat period. Defaults to 100µs, the paper's rate.
func Heartbeat(d time.Duration) Option { return func(t *Team) { t.heartbeat = d } }

// WithSignal selects the heartbeat mechanism. Defaults to SignalPolling.
func WithSignal(s Signal) Option { return func(t *Team) { t.signal = s } }

// WithTopology groups the team's workers into the given hierarchy for
// topology-aware stealing: victims are tried nearest-first (own leaf group,
// then sibling groups, then the rest of the team), cross-group submissions
// go through per-group inboxes, and Runner.Pin can anchor a nest to a
// group. The topology is fitted to the worker count (Topology.Fit), so a
// "2x4" spec on a 6-worker team becomes "2x3". Passing the zero Topology
// explicitly selects flat stealing and suppresses the HBC_TOPOLOGY
// environment override, which otherwise applies to teams created without
// this option.
func WithTopology(topo Topology) Option {
	return func(t *Team) {
		t.topo = topo
		t.topoSet = true
	}
}

// WithTelemetry enables the unified telemetry layer (internal/telemetry):
// a per-worker ring-buffer tracer recording promotions, steals, parks and
// wakes, heartbeat deliveries, watchdog failovers, and Adaptive Chunking
// retunes — exportable as Chrome trace_event JSON or a text timeline — and
// a metrics registry snapshotting scheduler, pulse, and run statistics in
// Prometheus and expvar form, servable from an opt-in HTTP endpoint
// (Telemetry().Registry.Serve). eventsPerWorker sizes each worker's event
// ring; <= 0 selects the default (telemetry.DefaultEventsPerWorker). A
// full ring overwrites its oldest events and counts them as dropped.
//
// Telemetry off (the default) costs nothing: the spawn/join fast path
// stays allocation-free and event sites are gated on one pointer test.
func WithTelemetry(eventsPerWorker int) Option {
	return func(t *Team) {
		t.telOn = true
		t.telRing = eventsPerWorker
	}
}

// WithMetricsInto enables telemetry like WithTelemetry (with the default
// ring size) but registers the team's metric groups into reg instead of a
// fresh registry. This is the team-pool construction option: every shard of
// a serving pool publishes into the pool's single registry, so one scrape
// endpoint covers the whole pool. Combine with WithName to keep shards
// distinguishable; without it, colliding group names get numeric suffixes.
func WithMetricsInto(reg *telemetry.Registry) Option {
	return func(t *Team) {
		t.telOn = true
		t.sharedReg = reg
	}
}

// WithName names the team. The name prefixes the team's metric-group names
// (e.g. "shard0_sched" instead of "sched"), which is what makes a shared
// registry legible when a pool of teams publishes into it.
func WithName(name string) Option { return func(t *Team) { t.name = name } }

// WithSourceWrapper installs a hook wrapping every heartbeat source the team
// creates for a loaded Runner. This is the injection point for delivery
// faults (see internal/chaos.WrapSource): a serving stack's fault tests
// stall or drop beats on a live team without reaching into the runtime. The
// wrapper runs before the watchdog is attached, so a WithWatchdog team fails
// over from a wrapped source exactly as it would from a genuinely silent
// one. A nil wrap is ignored.
func WithSourceWrapper(wrap func(pulse.Source) pulse.Source) Option {
	return func(t *Team) { t.wrapSource = wrap }
}

// WithWatchdog arms a pulse watchdog on every Runner the team loads: if the
// heartbeat source delivers no beat for grace periods (grace < 1 selects
// pulse.DefaultGrace), the runner fails over to plain timer polling so
// promotions keep flowing, and records the event in PulseStats().Failovers.
// Meaningful for the goroutine-driven mechanisms (SignalEpoch, SignalPing,
// SignalKernel), whose signaler can stall; SignalPolling cannot go silent.
func WithWatchdog(grace int) Option {
	return func(t *Team) {
		t.watchdog = grace
		if grace < 1 {
			t.watchdog = pulse.DefaultGrace
		}
	}
}

// NewTeam creates a worker team. Close must be called to release it.
func NewTeam(opts ...Option) *Team {
	t := &Team{heartbeat: core.DefaultHeartbeat, signal: SignalPolling, nworkers: runtime.NumCPU()}
	for _, o := range opts {
		o(t)
	}
	if t.nworkers < 1 {
		t.nworkers = 1
	}
	var sopts []sched.TeamOption
	if t.topoSet {
		sopts = append(sopts, sched.WithTopology(t.topo))
	}
	if t.telOn {
		t.tel = telemetry.New(t.nworkers, t.telRing)
		if t.sharedReg != nil {
			t.tel.Registry = t.sharedReg
		}
		sopts = append(sopts, sched.WithTracer(t.tel.Tracer))
	}
	t.ws = sched.NewTeam(t.nworkers, sopts...)
	if t.tel != nil {
		ws, tr := t.ws, t.tel.Tracer
		t.tel.Registry.Register(t.group("sched"), func(emit func(string, float64)) {
			c := ws.Counters()
			emit("spawned_total", float64(c.Spawned))
			emit("executed_total", float64(c.Executed))
			emit("steals_total", float64(c.Steals))
			emit("steals_local_total", float64(c.StealsLocal()))
			emit("steals_remote_total", float64(c.StealsRemote))
			emit("steal_search_ns_total", float64(c.StealNanos))
			emit("parks_total", float64(c.Parks))
			emit("wakes_total", float64(c.Wakes))
			emit("task_pool_hits_total", float64(c.TaskPoolHits))
			emit("task_pool_misses_total", float64(c.TaskPoolMisses))
			emit("latch_pool_hits_total", float64(c.LatchPoolHits))
			emit("latch_pool_misses_total", float64(c.LatchPoolMisses))
		})
		t.tel.Registry.Register(t.group("trace"), func(emit func(string, float64)) {
			total, dropped := tr.Totals()
			emit("events_total", float64(total))
			emit("events_dropped_total", float64(dropped))
		})
	}
	return t
}

// group prefixes a metric-group name with the team's name, if set.
func (t *Team) group(g string) string {
	if t.name == "" {
		return g
	}
	return t.name + "_" + g
}

// Telemetry returns the team's telemetry layer, or nil unless the team was
// created with WithTelemetry.
func (t *Team) Telemetry() *telemetry.Telemetry { return t.tel }

// Size returns the number of workers.
func (t *Team) Size() int { return t.ws.Size() }

// Topology returns the worker-group hierarchy in force, fitted to the team's
// worker count (the zero Topology when the team steals flat).
func (t *Team) Topology() Topology { return t.ws.Topology() }

// Groups returns the number of leaf groups of the team's topology (1 when
// flat). Valid group arguments to Runner.Pin are 0..Groups()-1.
func (t *Team) Groups() int { return t.ws.Groups() }

// Name returns the team's name ("" unless WithName).
func (t *Team) Name() string { return t.name }

// IdleWorkers returns the number of workers currently parked — the
// saturation signal an admission controller reads per request (one atomic
// load). A fully busy team reports 0.
func (t *Team) IdleWorkers() int { return t.ws.Idle() }

// InflightRuns returns the number of top-level runs currently admitted on
// the team (submitted or executing).
func (t *Team) InflightRuns() int { return t.ws.Inflight() }

// Close releases the team's workers. No loops may be running.
func (t *Team) Close() { t.ws.Close() }

// SchedStats is a snapshot of scheduler activity: task, steal, and parking
// counts plus fast-path pool effectiveness. Counters accumulate over the
// team's lifetime; per-run deltas are the difference of two snapshots (see
// Sub). Collection is always on — each event is one uncontended per-worker
// atomic add — so reading costs the aggregation, not the hot path.
type SchedStats struct {
	// Spawned counts tasks pushed (promotion forks plus root submissions);
	// Executed counts tasks run to completion.
	Spawned, Executed int64
	// Steals counts tasks taken from another worker's deque; StealsRemote
	// counts the subset that crossed a leaf-group boundary of the team's
	// topology (0 on a flat team); StealNanos is the total time those
	// successful steals spent searching for a victim.
	Steals, StealsRemote, StealNanos int64
	// Parks counts workers giving up spinning to block; Wakes counts parks
	// ended by an explicit wake signal from a spawner.
	Parks, Wakes int64
	// Pool hit/miss counts for the task and latch free lists. Misses are
	// heap allocations; a warm fast path shows only hits.
	TaskPoolHits, TaskPoolMisses   int64
	LatchPoolHits, LatchPoolMisses int64
}

// StealsLocal returns the number of steals that stayed within the thief's
// leaf group (equal to Steals on a flat team).
func (s SchedStats) StealsLocal() int64 { return s.Steals - s.StealsRemote }

// AvgStealLatency returns the mean time a successful steal spent searching.
func (s SchedStats) AvgStealLatency() time.Duration {
	if s.Steals == 0 {
		return 0
	}
	return time.Duration(s.StealNanos / s.Steals)
}

// Sub returns the fieldwise difference s - o, for per-run deltas.
func (s SchedStats) Sub(o SchedStats) SchedStats {
	s.Spawned -= o.Spawned
	s.Executed -= o.Executed
	s.Steals -= o.Steals
	s.StealsRemote -= o.StealsRemote
	s.StealNanos -= o.StealNanos
	s.Parks -= o.Parks
	s.Wakes -= o.Wakes
	s.TaskPoolHits -= o.TaskPoolHits
	s.TaskPoolMisses -= o.TaskPoolMisses
	s.LatchPoolHits -= o.LatchPoolHits
	s.LatchPoolMisses -= o.LatchPoolMisses
	return s
}

// SchedStats returns the team-wide scheduler counters, aggregated across
// workers at call time.
func (t *Team) SchedStats() SchedStats {
	c := t.ws.Counters()
	return SchedStats{
		Spawned:         c.Spawned,
		Executed:        c.Executed,
		Steals:          c.Steals,
		StealsRemote:    c.StealsRemote,
		StealNanos:      c.StealNanos,
		Parks:           c.Parks,
		Wakes:           c.Wakes,
		TaskPoolHits:    c.TaskPoolHits,
		TaskPoolMisses:  c.TaskPoolMisses,
		LatchPoolHits:   c.LatchPoolHits,
		LatchPoolMisses: c.LatchPoolMisses,
	}
}

// PromotionPolicy selects which loop a promotion splits. See the core
// package for the ablation semantics.
type PromotionPolicy = core.Policy

// Promotion policies: the paper's outer-loop-first default plus the two
// ablations (Experiment 19).
const (
	OuterFirst = core.PolicyOuterFirst
	InnerFirst = core.PolicyInnerFirst
	SelfOnly   = core.PolicySelfOnly
)

// Config tunes compilation of a nest; the zero value reproduces the paper's
// defaults (HBC mode, adaptive chunking, target 4 polls, window 8,
// outer-loop-first promotion).
type Config struct {
	// TPAL switches promotions to the prior-work baseline: leftover work on
	// the promoting worker's critical path.
	TPAL bool
	// Policy selects the promotion target (default outer-loop-first).
	Policy PromotionPolicy
	// LatchPollEvery batches interior-latch polls (default 1: the paper's
	// poll-every-latch placement). Raising it amortizes poll cost on nests
	// whose inner loops run only a few iterations per invocation.
	LatchPollEvery int64
	// StaticChunk, if > 0, disables adaptive chunking in favor of this
	// fixed leaf chunk size.
	StaticChunk int64
	// NoChunking polls at every leaf iteration (ablation).
	NoChunking bool
	// TargetPolls and WindowSize tune Adaptive Chunking (defaults 4 and 8).
	TargetPolls int64
	WindowSize  int
	// DisablePromotion compiles the full heartbeat machinery but never
	// promotes, for overhead measurement.
	DisablePromotion bool
	// TraceChunks records per-invocation chunk-size samples.
	TraceChunks bool
	// TraceEvents records every promotion into a bounded event log readable
	// via Runner.Events.
	TraceEvents bool
	// Facts attaches the static analyzer's fact record for the kernel this
	// nest was lowered from (analysis.BuildFacts). The compiled Program
	// caches it (Program.Facts) for downstream consumers — the serve
	// layer's purity-gated memoization — and, unless InitialChunk is also
	// set, the facts' leaf cost estimate seeds Adaptive Chunking's starting
	// chunk so the first heartbeat window begins near the right granularity
	// instead of at 1.
	Facts *analysis.Facts
	// InitialChunk explicitly seeds Adaptive Chunking's starting chunk
	// size, overriding any facts-derived hint. 0 means "derive from Facts,
	// else start at 1 (the paper's default)".
	InitialChunk int64
	// Sched selects the scheduling policy by name: "adaptive" (the paper's
	// §5.1 default), "static", "none", "guided", "factoring", "trapezoid",
	// "weighted", or "auto" (the LB4OMP-style online selector, which
	// profiles each candidate for SchedProfileRuns invocations and locks
	// the winner). Empty keeps the legacy StaticChunk/NoChunking selection.
	// Unknown names are a Compile error. See also WithPolicy.
	Sched string
	// MinChunk floors the decreasing schedules (guided, factoring,
	// trapezoid, weighted). Default 1.
	MinChunk int64
	// SchedWeights are per-worker weights for the "weighted" schedule
	// (mean-normalized; shorter slices cycle over the team).
	SchedWeights []float64
	// SchedProfileRuns is how many invocations the "auto" selector profiles
	// per candidate before locking. Default 3.
	SchedProfileRuns int
}

// WithPolicy returns a copy of the Config with the named scheduling policy
// selected — the fluent form of setting Sched:
//
//	prog, err := hbc.Compile(nest, hbc.Config{}.WithPolicy("guided"))
func (c Config) WithPolicy(name string) Config {
	c.Sched = name
	return c
}

func (c Config) coreOptions() core.Options {
	o := core.Options{
		Policy:           c.Policy,
		LatchPollEvery:   c.LatchPollEvery,
		TargetPolls:      c.TargetPolls,
		WindowSize:       c.WindowSize,
		InitialChunk:     c.InitialChunk,
		DisablePromotion: c.DisablePromotion,
		TraceChunks:      c.TraceChunks,
		TraceEvents:      c.TraceEvents,
	}
	if o.InitialChunk == 0 && c.Facts != nil {
		o.InitialChunk = c.Facts.LeafChunkHint()
	}
	if c.TPAL {
		o.Mode = core.ModeTPAL
	}
	switch {
	case c.Sched != "":
		// Named policy wins over the legacy switches; the name was already
		// validated by Compile. StaticChunk doubles as the "static"
		// schedule's size (and the static candidate's size under "auto").
		kind, _ := core.ParseChunkKind(c.Sched)
		o.Chunk = core.ChunkPolicy{
			Kind:        kind,
			Size:        c.StaticChunk,
			MinChunk:    c.MinChunk,
			Weights:     c.SchedWeights,
			ProfileRuns: c.SchedProfileRuns,
		}
	case c.NoChunking:
		o.Chunk = core.ChunkPolicy{Kind: core.ChunkNone}
	case c.StaticChunk > 0:
		o.Chunk = core.ChunkPolicy{Kind: core.ChunkStatic, Size: c.StaticChunk}
	default:
		o.Chunk = core.ChunkPolicy{Kind: core.ChunkAdaptive}
	}
	return o
}

// Program is a compiled loop nest ready to run on any Team.
type Program struct {
	p     *core.Program
	facts *analysis.Facts
}

// Facts returns the analysis fact record attached at compile time
// (Config.Facts), or nil. Consumers gate behavior on it: the serve layer
// memoizes results only for kernels whose facts prove purity.
func (p *Program) Facts() *analysis.Facts { return p.facts }

// Compile lowers a loop nest through the heartbeat middle-end: loop-slice
// task generation, chunking insertion, leftover-task generation, and task
// linking (paper §3). Before lowering, the nest is vetted
// (internal/analysis): structural violations and broken Reduction contracts
// — e.g. a Fresh that hands every task the same accumulator — are rejected
// here rather than surfacing as races at run time.
func Compile(nest *Nest, cfg Config) (*Program, error) {
	if cfg.Sched != "" {
		if _, err := core.ParseChunkKind(cfg.Sched); err != nil {
			return nil, err
		}
	}
	if diags := analysis.VetNest(nest); analysis.HasErrors(diags) {
		var msgs []string
		for _, d := range diags {
			if d.Severity == analysis.Err {
				msgs = append(msgs, d.Msg)
			}
		}
		return nil, fmt.Errorf("hbc: invalid nest: %s", strings.Join(msgs, "; "))
	}
	p, err := core.Compile(nest, cfg.coreOptions())
	if err != nil {
		return nil, err
	}
	return &Program{p: p, facts: cfg.Facts}, nil
}

// MustCompile is Compile panicking on error, for statically-known nests.
func MustCompile(nest *Nest, cfg Config) *Program {
	p, err := Compile(nest, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// RunSeq executes the nest sequentially (the serial elision), returning the
// root reduction accumulator if any.
func (p *Program) RunSeq(env any) any { return p.p.RunSeq(env) }

// RunStatic executes the nest under static block scheduling on the team —
// the complementary policy the paper's conclusion recommends for regular
// workloads (§6.8): one contiguous block of the root loop per worker, no
// polls, no promotions.
func (p *Program) RunStatic(t *Team, env any) any { return p.p.RunStatic(t.ws, env) }

// Leftovers returns the number of leftover tasks in the compiled table.
func (p *Program) Leftovers() int { return p.p.LeftoverCount() }

// Schedule returns the name of the scheduling policy the program was
// compiled with ("adaptive", "static", "guided", ..., "auto").
func (p *Program) Schedule() string { return p.p.Options().Chunk.Kind.String() }

// Runner binds a compiled Program to a Team and an environment. Adaptive
// chunking state persists across Run calls, so repeated invocations keep
// adapting (the paper's Fig. 11 scenario). Close releases the heartbeat
// source.
type Runner struct {
	x   *core.Exec
	tel *telemetry.Telemetry
}

// Load prepares a Program for execution on the team with the given
// environment, starting the heartbeat source. On a team created with
// WithTelemetry, the runner's promotions, heartbeat detections, chunk
// retunes, and watchdog failovers are traced, and its run, pulse, and
// chunk statistics are registered with the metrics registry under the
// nest's name.
func (t *Team) Load(p *Program, env any) *Runner {
	src := t.signal.newSource()
	if t.wrapSource != nil {
		src = t.wrapSource(src)
	}
	var wd *pulse.Watchdog
	if t.watchdog > 0 {
		wd = pulse.NewWatchdog(src, t.watchdog)
		src = wd
	}
	x := core.NewExec(p.p, t.ws, src, t.heartbeat, env)
	if t.tel != nil {
		x.SetTracer(t.tel.Tracer)
		if wd != nil {
			wd.SetTracer(t.tel.Tracer)
		}
		t.registerRunner(p, x)
	}
	x.Start()
	return &Runner{x: x, tel: t.tel}
}

// registerRunner exposes a loaded runner's statistics through the metrics
// registry: promotion and task counts, heartbeat delivery statistics, the
// promotion-log drop counter, and the live per-worker AC chunk sizes.
func (t *Team) registerRunner(p *Program, x *core.Exec) {
	name := p.p.Nest.Name
	if name == "" {
		name = "nest"
	}
	workers := t.ws.Size()
	leaves := p.p.Leaves()
	t.tel.Registry.Register(t.group("run_"+name), func(emit func(string, float64)) {
		s := x.Stats()
		emit("promotions_total", float64(s.Promotions()))
		emit("tasks_forked_total", float64(s.TasksForked()))
		emit("leftover_runs_total", float64(s.LeftoverRuns()))
		for lvl, n := range s.ByLevel() {
			emit(fmt.Sprintf("promotions_level_%d_total", lvl), float64(n))
		}
		ps := x.Pulse()
		emit("pulse_generated_total", float64(ps.Generated))
		emit("pulse_detected_total", float64(ps.Detected))
		emit("pulse_missed_total", float64(ps.Missed))
		emit("pulse_polls_total", float64(ps.Polls))
		emit("pulse_failovers_total", float64(ps.Failovers))
		emit("pulse_lag_mean_ns", float64(ps.LagMean))
		emit("pulse_lag_max_ns", float64(ps.LagMax))
		emit("promolog_dropped_total", float64(x.EventsDropped()))
		for w := 0; w < workers; w++ {
			chunks := x.Chunks(w)
			for ord := 0; ord < leaves && ord < len(chunks); ord++ {
				emit(fmt.Sprintf("ac_chunk_w%d_leaf%d", w, ord), float64(chunks[ord]))
			}
		}
	})
}

// Telemetry returns the telemetry layer of the team this runner was loaded
// on, or nil unless the team was created with WithTelemetry.
func (r *Runner) Telemetry() *telemetry.Telemetry { return r.tel }

// Pin anchors this runner's subsequent runs to one leaf group of the team's
// topology: the root task is submitted to that group's inbox, so the nest
// starts there and spreads further only when the widening steal search pulls
// work outward. Valid groups are 0..Team.Groups()-1; out-of-range values
// make the next run return an error. Pin(-1) restores unpinned submission.
// On a flat team Pin(0) is equivalent to not pinning.
func (r *Runner) Pin(group int) { r.x.Pin(group) }

// PinnedGroup returns the group this runner is pinned to, or -1 if unpinned.
func (r *Runner) PinnedGroup() int { return r.x.PinnedGroup() }

// Run executes one invocation of the nest, blocking until every iteration
// completed, and returns the root reduction accumulator (nil if none).
//
// If the nest fails — a loop body panics, or the team is closed — Run
// panics with the *PanicError (or ErrTeamClosed) that RunCtx would have
// returned, after detaching the heartbeat source so a failed run cannot
// strand its signaling goroutine. Use RunCtx to get an error instead, with
// the Runner left usable.
func (r *Runner) Run() any { return r.x.Run() }

// RunCtx executes one invocation of the nest under ctx and returns the root
// reduction accumulator (nil if none).
//
// Cancellation is cooperative: when ctx is cancelled or its deadline
// passes, every task of the run — promoted slice tasks and leftover tasks
// included — stops at its next safepoint (the chunk boundaries and interior
// latches where heartbeats are polled), all fork-join joins drain, and
// RunCtx returns ctx.Err(). A panic in a loop body, hook, or bounds
// function is returned as a *PanicError (first panic wins; the rest of the
// run is cancelled the same way). After an error the Team and Runner remain
// usable: a subsequent RunCtx starts a fresh invocation. Side effects of
// iterations that executed before the abort are visible; the reduction
// result of a failed run is discarded.
func (r *Runner) RunCtx(ctx context.Context) (any, error) { return r.x.RunCtx(ctx) }

// Close releases the heartbeat source. Close is idempotent and safe after a
// failed run.
func (r *Runner) Close() { r.x.Stop() }

// Stats exposes the runtime counters of this Runner.
func (r *Runner) Stats() *core.RunStats { return r.x.Stats() }

// PulseStats exposes heartbeat delivery statistics.
func (r *Runner) PulseStats() pulse.Stats { return r.x.Pulse() }

// ChunkTrace returns recorded chunk-size samples (Config.TraceChunks).
func (r *Runner) ChunkTrace() []core.ChunkSample { return r.x.ChunkTrace() }

// Chunks returns worker w's current per-leaf chunk sizes.
func (r *Runner) Chunks(w int) []int64 { return r.x.Chunks(w) }

// PolicyName returns the name of the scheduling policy in force for this
// runner ("adaptive", "static", ..., or "auto" for the online selector).
func (r *Runner) PolicyName() string { return r.x.PolicyName() }

// SelectorState is a snapshot of the online schedule selector's progress
// (profiling position, per-candidate medians, locked winner).
type SelectorState = core.SelectorState

// SelectorState reports the online selector's progress; ok is false unless
// the runner's program was compiled with the "auto" policy.
func (r *Runner) SelectorState() (SelectorState, bool) { return r.x.SelectorState() }

// Events returns the recorded promotion events (Config.TraceEvents).
func (r *Runner) Events() []core.PromotionEvent { return r.x.Events() }

// EventTrace returns the recorded promotion events together with the
// bounded log's truncation state (Config.TraceEvents): Dropped counts the
// promotions that arrived after the log filled, so a truncated trace is
// never mistaken for a complete one.
func (r *Runner) EventTrace() core.EventTrace { return r.x.EventTrace() }

// EventTrace is a snapshot of the promotion log with truncation state.
type EventTrace = core.EventTrace

// PromotionEvent is one recorded promotion; see Config.TraceEvents.
type PromotionEvent = core.PromotionEvent

// FormatTimeline renders promotion events as a terminal histogram.
var FormatTimeline = core.FormatTimeline
